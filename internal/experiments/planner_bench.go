package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	ires "github.com/asap-project/ires"
	"github.com/asap-project/ires/internal/planner"
)

// Planner micro-benchmark suite — the tracked perf baseline for the
// incremental planner (BENCH_PLANNER.json). The scenario is the Fig 12
// text-analytics workflow on a profiled TextPlatform: a cold plan rebuilds
// the DP table from scratch (cache flushed per iteration), a warm replan
// replays a fault-recovery round with the tf-idf output already
// materialized, and a warm Pareto build replays the multi-objective table.

// PlannerBench is a reusable planner benchmark environment.
type PlannerBench struct {
	P    *ires.Platform
	WF   *ires.Workflow
	Done []planner.MaterializedIntermediate
	// Cold is the reference plan of the cold build; warm builds must
	// describe identically.
	Cold *ires.Plan
	// ColdReplan is the reference replan with the Done set.
	ColdReplan *ires.Plan
}

// NewPlannerBench builds the benchmark environment: the Fig 12 platform and
// workflow, plus the done-set a mid-workflow replan would see (d1, the
// tf-idf output, already materialized).
func NewPlannerBench(seed int64, docs int64) (*PlannerBench, error) {
	p, err := TextPlatform(seed)
	if err != nil {
		return nil, err
	}
	wf, err := TextWorkflow(p, docs)
	if err != nil {
		return nil, err
	}
	cold, err := p.Plan(wf)
	if err != nil {
		return nil, err
	}
	step, ok := cold.StepFor("tfidf")
	if !ok {
		return nil, fmt.Errorf("planner bench: cold plan has no tfidf step:\n%s", cold.Describe())
	}
	done := []planner.MaterializedIntermediate{{
		Dataset: "d1",
		Meta:    step.OutMeta,
		Records: step.OutRecords,
		Bytes:   step.OutBytes,
	}}
	coldReplan, err := p.Replan(wf, done)
	if err != nil {
		return nil, err
	}
	return &PlannerBench{P: p, WF: wf, Done: done, Cold: cold, ColdReplan: coldReplan}, nil
}

// BenchPlanCold measures a from-scratch optimization pass: the planner cache
// is flushed before every iteration.
func (e *PlannerBench) BenchPlanCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.P.ResetPlannerCache()
		pl, err := e.P.Plan(e.WF)
		if err != nil {
			b.Fatal(err)
		}
		_ = pl
	}
}

// BenchReplanWarm measures the fault-recovery replan with a hot cache: the
// first replan after the warm-up is served from memoized subtrees and the
// shared seed map.
func (e *PlannerBench) BenchReplanWarm(b *testing.B) {
	b.ReportAllocs()
	if _, err := e.P.Replan(e.WF, e.Done); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := e.P.Replan(e.WF, e.Done)
		if err != nil {
			b.Fatal(err)
		}
		_ = pl
	}
}

// BenchParetoWarm measures a warm multi-objective build.
func (e *PlannerBench) BenchParetoWarm(b *testing.B) {
	b.ReportAllocs()
	if _, err := e.P.ParetoPlans(e.WF); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plans, err := e.P.ParetoPlans(e.WF)
		if err != nil {
			b.Fatal(err)
		}
		_ = plans
	}
}

// PlannerBenchResult is one benchmark's measurement.
type PlannerBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	MsPerOp     float64 `json:"msPerOp"`
}

// PlannerBenchReport is the BENCH_PLANNER.json schema: the three tracked
// measurements plus the derived acceptance ratios.
type PlannerBenchReport struct {
	Seed    int64                `json:"seed"`
	Docs    int64                `json:"docs"`
	Results []PlannerBenchResult `json:"results"`
	// ReplanSpeedup is cold-plan ns/op over warm-replan ns/op.
	ReplanSpeedup float64 `json:"replanSpeedup"`
	// AllocReduction is the fractional drop in allocations from cold plan to
	// warm replan (0.5 = half the allocations).
	AllocReduction float64 `json:"allocReduction"`
	// WarmIdentical records that warm builds described byte-identically to
	// the cold references.
	WarmIdentical bool `json:"warmIdentical"`
	// CacheStats snapshots the planner cache counters after the run.
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	CacheEpoch  uint64 `json:"cacheEpoch"`
	// Giant holds the giant-DAG flap-replan measurements (see giantdag.go);
	// nil when the giant cell was skipped.
	Giant *GiantDAGReport `json:"giantDAG,omitempty"`
}

func toResult(name string, r testing.BenchmarkResult) PlannerBenchResult {
	return PlannerBenchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		MsPerOp:     float64(r.NsPerOp()) / 1e6,
	}
}

// RunPlannerBench executes the suite via testing.Benchmark and derives the
// acceptance ratios. The warm-vs-cold identity check runs first so the
// measurements are taken on a planner whose determinism was just verified.
func RunPlannerBench(seed, docs int64) (*PlannerBenchReport, error) {
	env, err := NewPlannerBench(seed, docs)
	if err != nil {
		return nil, err
	}

	// Determinism gate: warm plan and warm replan must describe identically
	// to the cold references captured at construction.
	warmPlan, err := env.P.Plan(env.WF)
	if err != nil {
		return nil, err
	}
	warmReplan, err := env.P.Replan(env.WF, env.Done)
	if err != nil {
		return nil, err
	}
	identical := warmPlan.Describe() == env.Cold.Describe() &&
		warmReplan.Describe() == env.ColdReplan.Describe()
	if !identical {
		return nil, fmt.Errorf("planner bench: warm plan diverged from cold reference:\ncold:\n%s\nwarm:\n%s",
			env.Cold.Describe(), warmPlan.Describe())
	}

	cold := testing.Benchmark(env.BenchPlanCold)
	warm := testing.Benchmark(env.BenchReplanWarm)
	pareto := testing.Benchmark(env.BenchParetoWarm)

	report := &PlannerBenchReport{
		Seed: seed,
		Docs: docs,
		Results: []PlannerBenchResult{
			toResult("BenchmarkPlanCold", cold),
			toResult("BenchmarkReplanWarm", warm),
			toResult("BenchmarkParetoWarm", pareto),
		},
		WarmIdentical: identical,
	}
	if warm.NsPerOp() > 0 {
		report.ReplanSpeedup = float64(cold.NsPerOp()) / float64(warm.NsPerOp())
	}
	if ca := cold.AllocsPerOp(); ca > 0 {
		report.AllocReduction = 1 - float64(warm.AllocsPerOp())/float64(ca)
	}
	cs := env.P.PlannerCacheStats()
	report.CacheHits, report.CacheMisses, report.CacheEpoch = cs.Hits, cs.Misses, cs.Epoch
	return report, nil
}

// WriteJSON renders the report as indented JSON.
func (r *PlannerBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
