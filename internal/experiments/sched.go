package experiments

import (
	"fmt"
	"sort"

	ires "github.com/asap-project/ires"
)

// schedBurstDocs is the identical submission burst every admission policy
// receives: six text-analytics workflows of mixed sizes, all arriving at
// virtual time zero.
var schedBurstDocs = []int64{120_000, 50_000, 150_000, 80_000, 60_000, 100_000}

// schedResult aggregates one policy's run of the contention burst.
type schedResult struct {
	label     string
	batchSec  float64 // completion time of the whole burst
	meanSpan  float64 // mean per-run makespan
	meanWait  float64 // mean queue wait (admission latency)
	peak      int     // peak number of concurrently running workflows
	makespans []float64
}

// SchedContention compares admission policies on a contended burst of
// concurrent workflow submissions sharing one simulated cluster. FIFO
// serializes the burst (each run gets the whole cluster, later runs queue),
// while fair-share overlaps runs on node sub-leases — trading per-run
// makespan for batch completion time.
func SchedContention(seed int64) (*Report, error) {
	r := &Report{
		ID:     "SCHED",
		Title:  "Admission control under contention: FIFO vs fair-share",
		XLabel: "workflow (submission order)",
		YLabel: "makespan (s)",
	}
	policies := []struct {
		label string
		adm   ires.AdmissionPolicy
	}{
		{"FIFO", ires.FIFO()},
		{"FairShare(2)", ires.FairShare(2)},
		{"FairShare(4)", ires.FairShare(4)},
	}
	summary := Table{
		Title:  "Burst of 6 text workflows, per admission policy",
		Header: []string{"policy", "batch completion (s)", "mean makespan (s)", "mean queue wait (s)", "peak concurrency"},
	}
	results := make([]schedResult, 0, len(policies))
	for _, pc := range policies {
		res, err := runSchedBurst(seed, pc.label, pc.adm)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
		summary.Rows = append(summary.Rows, []string{
			res.label,
			fmt.Sprintf("%.1f", res.batchSec),
			fmt.Sprintf("%.1f", res.meanSpan),
			fmt.Sprintf("%.1f", res.meanWait),
			fmt.Sprintf("%d", res.peak),
		})
		pts := make([]Point, len(res.makespans))
		for i, m := range res.makespans {
			pts[i] = Point{X: float64(i), Y: m}
		}
		r.AddSeries(res.label, pts...)
	}
	r.Tables = append(r.Tables, summary)
	fifo, fair := results[0], results[1]
	r.Note("FIFO finishes the burst in %.1fs with zero overlap (peak concurrency %d); FairShare(2) finishes in %.1fs (peak %d).",
		fifo.batchSec, fifo.peak, fair.batchSec, fair.peak)
	r.Note("Per-run makespans shift the other way: %.1fs mean under FIFO vs %.1fs under FairShare(2) — overlapped runs lease fewer nodes each.",
		fifo.meanSpan, fair.meanSpan)
	return r, nil
}

// runSchedBurst executes the standard burst under one admission policy on a
// fresh platform and aggregates the run snapshots.
func runSchedBurst(seed int64, label string, adm ires.AdmissionPolicy) (schedResult, error) {
	p, err := ires.NewPlatform(ires.Options{Seed: seed, Admission: adm})
	if err != nil {
		return schedResult{}, err
	}
	if err := profileTextOps(p, seed); err != nil {
		return schedResult{}, err
	}
	for i, docs := range schedBurstDocs {
		wf, err := TextWorkflow(p, docs)
		if err != nil {
			return schedResult{}, err
		}
		p.SubmitNamed(fmt.Sprintf("wf%02d", i), wf)
	}
	p.Drain()
	res := schedResult{label: label}
	snaps := p.Runs()
	for _, s := range snaps {
		if s.Status != "succeeded" {
			return schedResult{}, fmt.Errorf("%s: run %s ended %s: %s", label, s.ID, s.Status, s.Error)
		}
		if s.FinishedSec > res.batchSec {
			res.batchSec = s.FinishedSec
		}
		res.meanSpan += s.MakespanSec
		res.makespans = append(res.makespans, s.MakespanSec)
	}
	res.meanSpan /= float64(len(snaps))
	// Queue waits come from the metrics registry — the scheduler observes
	// every admission into ires_sched_queue_wait_vseconds, so the table and
	// the /metrics endpoint can never drift apart.
	if count, sum := p.Metrics().HistogramTotals("ires_sched_queue_wait_vseconds"); count > 0 {
		res.meanWait = sum / count
	}
	res.peak = peakOverlap(snaps)
	return res, nil
}

// peakOverlap counts the maximum number of runs simultaneously in their
// [started, finished) execution window.
func peakOverlap(snaps []ires.RunSnapshot) int {
	type edge struct {
		at    float64
		delta int
	}
	edges := make([]edge, 0, 2*len(snaps))
	for _, s := range snaps {
		edges = append(edges, edge{s.StartedSec, +1}, edge{s.FinishedSec, -1})
	}
	// Process closings before openings at equal times so back-to-back runs
	// don't count as overlapping.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta
	})
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
