// Package trace is the structured, virtual-time-stamped event subsystem of
// the platform: every layer (planner, executor, circuit breaker, cluster,
// fault injection) emits typed events to a Tracer, and a Recorder aggregates
// them into an in-memory event log plus a counter/gauge registry with a
// Prometheus-style text exposition.
//
// Events are keyed to virtual time only — no wall-clock, no goroutine ids —
// so with a fixed seed the entire trace of a run is deterministic and can be
// asserted byte-for-byte in tests. This is the debugging and benchmarking
// substrate the performance experiments report against.
package trace

import "time"

// EventType names one kind of trace event. The dotted prefix groups events
// by subsystem (plan.*, attempt.*, container.*, breaker.*, node.*, fault.*).
type EventType string

// The full event vocabulary.
const (
	// Planner lifecycle: emitted around every Plan/Replan/ParetoPlans call,
	// with the DP statistics (candidates tried, entries kept, moves
	// considered, pruned front entries) in Fields.
	EvPlanStart  EventType = "plan.start"
	EvPlanFinish EventType = "plan.finish"

	// EvReplan marks a fault-triggered replanning round in the executor.
	EvReplan EventType = "replan"

	// Executor attempt lifecycle. attempt.start fires once containers are
	// allocated and the attempt is running; speculative copies carry
	// Speculative=true. attempt.retry records a scheduled same-engine
	// relaunch after a transient failure.
	EvAttemptStart  EventType = "attempt.start"
	EvAttemptFinish EventType = "attempt.finish"
	EvAttemptFail   EventType = "attempt.fail"
	EvAttemptRetry  EventType = "attempt.retry"
	// EvSpeculate marks a straggler deadline firing a backup copy.
	EvSpeculate EventType = "attempt.speculate"

	// Container accounting (one event per gang, container count in Fields).
	EvContainerAlloc   EventType = "container.alloc"
	EvContainerRelease EventType = "container.release"
	EvContainerLost    EventType = "container.lost"

	// Circuit-breaker transitions.
	EvBreakerTrip  EventType = "breaker.trip"
	EvBreakerReset EventType = "breaker.reset"

	// Cluster node lifecycle.
	EvNodeCrash   EventType = "node.crash"
	EvNodeRestore EventType = "node.restore"

	// Chaos-injection layer. fault.oomkill records a container killed by
	// the cluster's OOM killer when an allocation pushed a node's actual
	// memory usage past its physical capacity under overcommit (containerID,
	// memMB, overMB in Fields; the Node field names the oversubscribed
	// node). The killed container surfaces to its executor as a lost
	// container at the next completion sweep, feeding the ordinary
	// retry/checkpoint-restore recovery stack.
	EvFaultTransient EventType = "fault.transient"
	EvFaultStraggler EventType = "fault.straggler"
	EvFaultOutage    EventType = "fault.outage"
	EvOOMKill        EventType = "fault.oomkill"

	// Multi-workflow scheduler lifecycle: submission into the queue,
	// admission (with the granted node quota and queue wait in Fields),
	// terminal states, and the preemption arc — run.suspend when a policy
	// revokes a running lease at an operator boundary, run.resume when the
	// run is re-admitted and replans from its done set (suspendedSec in
	// Fields), run.reject when a policy refuses a run outright.
	EvRunSubmit  EventType = "run.submit"
	EvRunAdmit   EventType = "run.admit"
	EvRunFinish  EventType = "run.finish"
	EvRunCancel  EventType = "run.cancel"
	EvRunSuspend EventType = "run.suspend"
	EvRunResume  EventType = "run.resume"
	EvRunReject  EventType = "run.reject"

	// Elastic lease lifecycle: grant at admission, grow/shrink while the
	// lease is live (node deltas in Fields), revoke on release. Emitted by
	// the scheduler (which knows the owning run), not the cluster, so the
	// events carry RunIDs and the cluster never calls tracers under its
	// own lock.
	EvLeaseGrant  EventType = "lease.grant"
	EvLeaseGrow   EventType = "lease.grow"
	EvLeaseShrink EventType = "lease.shrink"
	EvLeaseRevoke EventType = "lease.revoke"

	// Sub-operator checkpointing. checkpoint.write fires at an iteration or
	// partition boundary once the modeled checkpoint write completes (units,
	// totalUnits, writeSec in Fields); checkpoint.restore fires when a retry,
	// speculative copy or resumed segment seeds an attempt from a stored
	// checkpoint (units, totalUnits, restoreSec in Fields); checkpoint.lost
	// records a checkpoint whose last replica died with a crashed node (the
	// Step field carries the checkpoint key). attempt.yield marks an attempt
	// suspending cooperatively at a checkpoint boundary instead of running
	// to the operator boundary — the bounded-latency preemption arc.
	EvCheckpointWrite   EventType = "checkpoint.write"
	EvCheckpointRestore EventType = "checkpoint.restore"
	EvCheckpointLost    EventType = "checkpoint.lost"
	EvAttemptYield      EventType = "attempt.yield"

	// Node-agent reconciliation layer. agent.report records a reconcile
	// round observing a fresh agent report with news (seq/incarnation/used
	// in Fields); agent.drift records a stale report tolerated behind a
	// partition (staleSec in Fields). Death detected by reconciliation —
	// rather than announced by FailNode — emits the ordinary node.crash
	// with detected=1 in Fields. These fire only from explicit Reconcile
	// rounds, so scenarios that never reconcile keep byte-identical traces.
	EvAgentReport EventType = "agent.report"
	EvAgentDrift  EventType = "agent.drift"

	// Federation layer: a run placed on a member cluster (locality score
	// and spare capacity in Fields; Node carries the member name), a
	// region-wide correlated agent death, and a run moved across clusters
	// by the outage-recovery replan.
	EvFederationPlace  EventType = "federation.place"
	EvFederationOutage EventType = "federation.outage"
	EvFederationReplan EventType = "federation.replan"
)

// Event is one structured trace record. Only deterministic, virtual-time
// data goes in an Event: serialising the log of a fixed-seed run twice must
// yield identical bytes (Fields is a map, but encoding/json sorts map keys).
type Event struct {
	// Seq is the 1-based emission index, assigned by the Recorder.
	Seq int64 `json:"seq"`
	// VTimeSec is the virtual time of the event in seconds.
	VTimeSec float64   `json:"vtime"`
	Type     EventType `json:"type"`

	// RunID identifies the scheduler run the event belongs to, so the
	// interleaved log of concurrent workflows can be demuxed per run.
	// Empty for platform-global events (node crashes, fault injections).
	RunID string `json:"run,omitempty"`

	// Step is the plan-step name the event concerns, when any.
	Step string `json:"step,omitempty"`
	// Operator is the materialized operator name (may differ from Step for
	// speculative copies running an alternative implementation).
	Operator string `json:"operator,omitempty"`
	Engine   string `json:"engine,omitempty"`
	Node     string `json:"node,omitempty"`

	// Attempt numbers execution attempts of a step within one plan (1-based).
	Attempt     int  `json:"attempt,omitempty"`
	Speculative bool `json:"speculative,omitempty"`

	// Error carries the failure reason of fail/fault events.
	Error string `json:"error,omitempty"`

	// Fields holds event-specific numeric payload (DP statistics, container
	// counts, durations, stretch factors, ...).
	Fields map[string]float64 `json:"fields,omitempty"`
}

// At stamps a virtual time on the event and returns it (builder helper).
func (ev Event) At(vt time.Duration) Event {
	ev.VTimeSec = vt.Seconds()
	return ev
}

// Tracer receives trace events. Implementations must be safe for concurrent
// use; Emit must not retain ev.Fields (emitters hand ownership over).
type Tracer interface {
	Emit(ev Event)
}

// nop discards everything.
type nop struct{}

func (nop) Emit(Event) {}

// Nop returns the no-op tracer (the default everywhere).
func Nop() Tracer { return nop{} }

// multi fans events out to several tracers.
type multi []Tracer

func (m multi) Emit(ev Event) {
	for _, t := range m {
		t.Emit(ev)
	}
}

// withRun stamps a run id on every event passing through.
type withRun struct {
	t  Tracer
	id string
}

func (w withRun) Emit(ev Event) {
	if ev.RunID == "" {
		ev.RunID = w.id
	}
	w.t.Emit(ev)
}

// WithRun wraps a tracer so every emitted event carries the given run id,
// demuxing the shared trace log when several workflows execute at once.
func WithRun(t Tracer, runID string) Tracer {
	if t == nil {
		return Nop()
	}
	return withRun{t: t, id: runID}
}

// Multi fans out to every non-nil tracer; with none it returns Nop.
func Multi(tracers ...Tracer) Tracer {
	var out multi
	for _, t := range tracers {
		if t != nil {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return Nop()
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}
