package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a lock-protected counter/gauge/histogram store with a
// Prometheus-style text exposition. Series are identified by metric name plus
// a sorted label set; all mutators are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	kinds   map[string]string  // metric name -> "counter" | "gauge" | "histogram"
	help    map[string]string  // metric name -> HELP line
	series  map[string]float64 // full series key -> value
	ordered []string           // series keys in first-seen order (resorted on write)

	buckets map[string][]float64   // histogram metric name -> upper bounds
	hists   map[string]*histSeries // full series key -> histogram state
	hOrder  []string               // histogram series keys in first-seen order
}

// histSeries is the state of one histogram series: cumulative-style bucket
// counts are derived at exposition time from the per-bucket tallies here.
type histSeries struct {
	counts []float64 // one per bucket bound, plus the +Inf overflow at the end
	sum    float64
	count  float64
}

// DefBuckets are the default histogram bounds (virtual seconds): roughly
// exponential from sub-second operator attempts to hour-long workflows.
// Fixed at compile time so expositions are deterministic across runs.
var DefBuckets = []float64{0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600, 1800, 3600}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:   make(map[string]string),
		help:    make(map[string]string),
		series:  make(map[string]float64),
		buckets: make(map[string][]float64),
		hists:   make(map[string]*histSeries),
	}
}

// seriesKey renders `name{k1="v1",k2="v2"}` with sorted label keys, which is
// also the exposition form.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) declare(name, kind string) {
	if _, ok := r.kinds[name]; !ok {
		r.kinds[name] = kind
	}
}

// Help attaches a HELP line to a metric name.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// Inc adds delta to a counter series (creating it at zero).
func (r *Registry) Inc(name string, labels map[string]string, delta float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.declare(name, "counter")
	key := seriesKey(name, labels)
	if _, ok := r.series[key]; !ok {
		r.ordered = append(r.ordered, key)
	}
	r.series[key] += delta
}

// Add adds delta to a gauge series (delta may be negative).
func (r *Registry) Add(name string, labels map[string]string, delta float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.declare(name, "gauge")
	key := seriesKey(name, labels)
	if _, ok := r.series[key]; !ok {
		r.ordered = append(r.ordered, key)
	}
	r.series[key] += delta
}

// Set sets a gauge series to v.
func (r *Registry) Set(name string, labels map[string]string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.declare(name, "gauge")
	key := seriesKey(name, labels)
	if _, ok := r.series[key]; !ok {
		r.ordered = append(r.ordered, key)
	}
	r.series[key] = v
}

// DeclareHistogram registers a histogram metric with explicit upper bounds.
// Bounds must be sorted ascending; an implicit +Inf bucket is always added.
// Declaring twice keeps the first bound set (so expositions stay stable).
func (r *Registry) DeclareHistogram(name string, bounds []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.declare(name, "histogram")
	if _, ok := r.buckets[name]; !ok {
		r.buckets[name] = append([]float64(nil), bounds...)
	}
}

// Observe records one observation into a histogram series, creating the
// series (with DefBuckets unless DeclareHistogram set explicit bounds) on
// first use.
func (r *Registry) Observe(name string, labels map[string]string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.declare(name, "histogram")
	bounds, ok := r.buckets[name]
	if !ok {
		bounds = DefBuckets
		r.buckets[name] = bounds
	}
	key := seriesKey(name, labels)
	h, ok := r.hists[key]
	if !ok {
		h = &histSeries{counts: make([]float64, len(bounds)+1)}
		r.hists[key] = h
		r.hOrder = append(r.hOrder, key)
	}
	idx := len(bounds) // +Inf overflow slot
	for i, b := range bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.sum += v
	h.count++
}

// HistogramCount returns the observation count of one histogram series.
func (r *Registry) HistogramCount(name string, labels map[string]string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[seriesKey(name, labels)]; ok {
		return h.count
	}
	return 0
}

// HistogramSum returns the sum of observations of one histogram series.
func (r *Registry) HistogramSum(name string, labels map[string]string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[seriesKey(name, labels)]; ok {
		return h.sum
	}
	return 0
}

// HistogramTotals sums count and sum across every label set of a histogram
// metric name (the histogram analogue of Sum).
func (r *Registry) HistogramTotals(name string) (count, sum float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for key, h := range r.hists {
		if key == name || strings.HasPrefix(key, name+"{") {
			count += h.count
			sum += h.sum
		}
	}
	return count, sum
}

// Value reads one series (zero when absent).
func (r *Registry) Value(name string, labels map[string]string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series[seriesKey(name, labels)]
}

// Sum adds up every series of a metric name across label sets.
func (r *Registry) Sum(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0.0
	for key, v := range r.series {
		if key == name || strings.HasPrefix(key, name+"{") {
			total += v
		}
	}
	return total
}

// Snapshot returns a copy of every series value keyed by exposition name.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.series))
	for k, v := range r.series {
		out[k] = v
	}
	return out
}

// metricOf strips the label block off a series key.
func metricOf(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, metrics sorted by name and series sorted within each metric, so
// the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	keys := make([]string, len(r.ordered))
	copy(keys, r.ordered)
	sort.Strings(keys)
	type row struct {
		key string
		val float64
	}
	byMetric := make(map[string][]row)
	var metricNames []string
	for _, key := range keys {
		m := metricOf(key)
		if _, ok := byMetric[m]; !ok {
			metricNames = append(metricNames, m)
		}
		byMetric[m] = append(byMetric[m], row{key, r.series[key]})
	}
	hKeys := make([]string, len(r.hOrder))
	copy(hKeys, r.hOrder)
	sort.Strings(hKeys)
	type hrow struct {
		key    string
		bounds []float64
		counts []float64
		sum    float64
		count  float64
	}
	histByMetric := make(map[string][]hrow)
	for _, key := range hKeys {
		m := metricOf(key)
		if _, ok := histByMetric[m]; !ok {
			if _, seen := byMetric[m]; !seen {
				metricNames = append(metricNames, m)
			}
		}
		h := r.hists[key]
		histByMetric[m] = append(histByMetric[m], hrow{
			key:    key,
			bounds: r.buckets[m],
			counts: append([]float64(nil), h.counts...),
			sum:    h.sum,
			count:  h.count,
		})
	}
	kinds := make(map[string]string, len(r.kinds))
	for k, v := range r.kinds {
		kinds[k] = v
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.Strings(metricNames)
	for _, m := range metricNames {
		if h := help[m]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m, h); err != nil {
				return err
			}
		}
		kind := kinds[m]
		if kind == "" {
			kind = "untyped"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m, kind); err != nil {
			return err
		}
		for _, rw := range byMetric[m] {
			if _, err := fmt.Fprintf(w, "%s %s\n", rw.key, formatValue(rw.val)); err != nil {
				return err
			}
		}
		for _, hr := range histByMetric[m] {
			if err := writeHistogram(w, m, hr.key, hr.bounds, hr.counts, hr.sum, hr.count); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram series in the cumulative-bucket
// Prometheus form: name_bucket{...,le="b"} lines (ending at le="+Inf"),
// then name_sum and name_count.
func writeHistogram(w io.Writer, metric, key string, bounds, counts []float64, sum, count float64) error {
	labels := ""
	if i := strings.IndexByte(key, '{'); i >= 0 {
		labels = strings.TrimSuffix(key[i+1:], "}") + ","
	}
	cum := 0.0
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %s\n", metric, labels, formatValue(b), formatValue(cum)); err != nil {
			return err
		}
	}
	cum += counts[len(bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %s\n", metric, labels, formatValue(cum)); err != nil {
		return err
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + strings.TrimSuffix(labels, ",") + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", metric, suffix, formatValue(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %s\n", metric, suffix, formatValue(count))
	return err
}

// formatValue renders integers without an exponent and everything else with
// the shortest round-trip representation.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
