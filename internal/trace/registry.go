package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a lock-protected counter/gauge store with a Prometheus-style
// text exposition. Series are identified by metric name plus a sorted label
// set; all mutators are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	kinds   map[string]string  // metric name -> "counter" | "gauge"
	help    map[string]string  // metric name -> HELP line
	series  map[string]float64 // full series key -> value
	ordered []string           // series keys in first-seen order (resorted on write)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:  make(map[string]string),
		help:   make(map[string]string),
		series: make(map[string]float64),
	}
}

// seriesKey renders `name{k1="v1",k2="v2"}` with sorted label keys, which is
// also the exposition form.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) declare(name, kind string) {
	if _, ok := r.kinds[name]; !ok {
		r.kinds[name] = kind
	}
}

// Help attaches a HELP line to a metric name.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// Inc adds delta to a counter series (creating it at zero).
func (r *Registry) Inc(name string, labels map[string]string, delta float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.declare(name, "counter")
	key := seriesKey(name, labels)
	if _, ok := r.series[key]; !ok {
		r.ordered = append(r.ordered, key)
	}
	r.series[key] += delta
}

// Add adds delta to a gauge series (delta may be negative).
func (r *Registry) Add(name string, labels map[string]string, delta float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.declare(name, "gauge")
	key := seriesKey(name, labels)
	if _, ok := r.series[key]; !ok {
		r.ordered = append(r.ordered, key)
	}
	r.series[key] += delta
}

// Set sets a gauge series to v.
func (r *Registry) Set(name string, labels map[string]string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.declare(name, "gauge")
	key := seriesKey(name, labels)
	if _, ok := r.series[key]; !ok {
		r.ordered = append(r.ordered, key)
	}
	r.series[key] = v
}

// Value reads one series (zero when absent).
func (r *Registry) Value(name string, labels map[string]string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series[seriesKey(name, labels)]
}

// Sum adds up every series of a metric name across label sets.
func (r *Registry) Sum(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0.0
	for key, v := range r.series {
		if key == name || strings.HasPrefix(key, name+"{") {
			total += v
		}
	}
	return total
}

// Snapshot returns a copy of every series value keyed by exposition name.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.series))
	for k, v := range r.series {
		out[k] = v
	}
	return out
}

// metricOf strips the label block off a series key.
func metricOf(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, metrics sorted by name and series sorted within each metric, so
// the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	keys := make([]string, len(r.ordered))
	copy(keys, r.ordered)
	sort.Strings(keys)
	type row struct {
		key string
		val float64
	}
	byMetric := make(map[string][]row)
	var metricNames []string
	for _, key := range keys {
		m := metricOf(key)
		if _, ok := byMetric[m]; !ok {
			metricNames = append(metricNames, m)
		}
		byMetric[m] = append(byMetric[m], row{key, r.series[key]})
	}
	kinds := make(map[string]string, len(r.kinds))
	for k, v := range r.kinds {
		kinds[k] = v
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.Strings(metricNames)
	for _, m := range metricNames {
		if h := help[m]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m, h); err != nil {
				return err
			}
		}
		kind := kinds[m]
		if kind == "" {
			kind = "untyped"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m, kind); err != nil {
			return err
		}
		for _, rw := range byMetric[m] {
			if _, err := fmt.Fprintf(w, "%s %s\n", rw.key, formatValue(rw.val)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatValue renders integers without an exponent and everything else with
// the shortest round-trip representation.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
