package trace

import (
	"strings"
	"testing"
	"time"
)

// Observations land in the first bucket whose bound is >= the value; the
// exposition renders cumulative counts ending at +Inf, then _sum and _count.
func TestHistogramBucketsAndExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Help("test_hist", "a test histogram")
	reg.DeclareHistogram("test_hist", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		reg.Observe("test_hist", nil, v)
	}
	if got := reg.HistogramCount("test_hist", nil); got != 5 {
		t.Fatalf("count = %v, want 5", got)
	}
	if got := reg.HistogramSum("test_hist", nil); got != 111.5 {
		t.Fatalf("sum = %v, want 111.5", got)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_hist_bucket{le="1"} 2`, // 0.5 and 1 (le is inclusive)
		`test_hist_bucket{le="5"} 3`,
		`test_hist_bucket{le="10"} 4`,
		`test_hist_bucket{le="+Inf"} 5`,
		`test_hist_sum 111.5`,
		`test_hist_count 5`,
		`# TYPE test_hist histogram`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// Labeled series aggregate independently; HistogramTotals sums across them.
func TestHistogramLabelsAndTotals(t *testing.T) {
	reg := NewRegistry()
	reg.DeclareHistogram("dur", []float64{10})
	reg.Observe("dur", map[string]string{"engine": "Spark"}, 4)
	reg.Observe("dur", map[string]string{"engine": "Spark"}, 20)
	reg.Observe("dur", map[string]string{"engine": "Hama"}, 6)
	if got := reg.HistogramCount("dur", map[string]string{"engine": "Spark"}); got != 2 {
		t.Fatalf("spark count = %v, want 2", got)
	}
	count, sum := reg.HistogramTotals("dur")
	if count != 3 || sum != 30 {
		t.Fatalf("totals = (%v, %v), want (3, 30)", count, sum)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`dur_bucket{engine="Hama",le="10"} 1`,
		`dur_bucket{engine="Spark",le="+Inf"} 2`,
		`dur_sum{engine="Spark"} 24`,
		`dur_count{engine="Hama"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// An undeclared histogram observed directly uses the default buckets; the
// exposition stays byte-deterministic across identical observation sets.
func TestHistogramDefaultBucketsDeterministic(t *testing.T) {
	render := func() string {
		reg := NewRegistry()
		for i := 0; i < 50; i++ {
			reg.Observe("adhoc", map[string]string{"k": string(rune('a' + i%3))}, float64(i))
		}
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := render()
	if !strings.Contains(first, `adhoc_bucket{k="a",le="0.5"} 1`) {
		t.Fatalf("default buckets not applied:\n%s", first)
	}
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatal("histogram exposition is not deterministic")
		}
	}
}

// The recorder folds attempt durations, queue waits and suspension lengths
// into the scheduling histograms.
func TestRecorderSchedulingHistograms(t *testing.T) {
	rec := NewRecorder(0)
	rec.Emit(Event{Type: EvAttemptFinish, Engine: "Spark", Fields: map[string]float64{"durSec": 12}}.At(12 * time.Second))
	rec.Emit(Event{Type: EvRunAdmit, RunID: "run-001", Fields: map[string]float64{"nodes": 4, "waitSec": 3}}.At(15 * time.Second))
	rec.Emit(Event{Type: EvRunSuspend, RunID: "run-001", Fields: map[string]float64{"nodes": 4}}.At(20 * time.Second))
	rec.Emit(Event{Type: EvRunResume, RunID: "run-001", Fields: map[string]float64{"nodes": 4, "suspendedSec": 25}}.At(45 * time.Second))
	reg := rec.Registry()
	if got := reg.HistogramSum("ires_attempt_duration_vseconds", map[string]string{"engine": "Spark"}); got != 12 {
		t.Fatalf("attempt duration sum = %v, want 12", got)
	}
	if got, _ := reg.HistogramTotals("ires_sched_queue_wait_vseconds"); got != 1 {
		t.Fatalf("queue wait count = %v, want 1", got)
	}
	if _, sum := reg.HistogramTotals("ires_sched_suspension_vseconds"); sum != 25 {
		t.Fatalf("suspension sum = %v, want 25", sum)
	}
	if got := reg.Value("ires_runs_suspended_total", nil); got != 1 {
		t.Fatalf("suspended counter = %v, want 1", got)
	}
	if got := reg.Value("ires_runs_resumed_total", nil); got != 1 {
		t.Fatalf("resumed counter = %v, want 1", got)
	}
}
