package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMultiSkipsNils(t *testing.T) {
	rec := NewRecorder(0)
	m := Multi(nil, rec, nil)
	m.Emit(Event{Type: EvAttemptStart, Engine: "Spark"})
	if got := rec.Seq(); got != 1 {
		t.Fatalf("Seq = %d, want 1", got)
	}
	if Nop() == nil {
		t.Fatal("Nop() must be usable as a sink")
	}
	Nop().Emit(Event{Type: EvAttemptStart})
}

func TestEventAtStampsVirtualTime(t *testing.T) {
	ev := Event{Type: EvReplan}.At(90 * time.Second)
	if ev.VTimeSec != 90 {
		t.Fatalf("VTimeSec = %v, want 90", ev.VTimeSec)
	}
}

func TestRecorderAggregatesCounters(t *testing.T) {
	rec := NewRecorder(0)
	rec.Emit(Event{Type: EvAttemptStart, Engine: "Spark"})
	rec.Emit(Event{Type: EvAttemptStart, Engine: "Hama", Speculative: true})
	rec.Emit(Event{Type: EvAttemptFinish, Engine: "Hama", Speculative: true})
	rec.Emit(Event{Type: EvAttemptFail, Engine: "Spark", Error: "boom"})
	rec.Emit(Event{Type: EvAttemptRetry, Engine: "Spark"})
	rec.Emit(Event{Type: EvContainerAlloc, Fields: map[string]float64{"containers": 4}})
	rec.Emit(Event{Type: EvContainerRelease, Fields: map[string]float64{"containers": 3}})
	rec.Emit(Event{Type: EvContainerLost, Fields: map[string]float64{"containers": 1}})
	rec.Emit(Event{Type: EvBreakerTrip, Engine: "Spark"})
	rec.Emit(Event{Type: EvReplan})
	rec.Emit(Event{Type: EvFaultTransient})
	rec.Emit(Event{Type: EvFaultStraggler})
	rec.Emit(Event{Type: EvNodeCrash, Node: "node0"})
	rec.Emit(Event{Type: EvPlanStart, Fields: map[string]float64{"nodes": 3}})
	rec.Emit(Event{Type: EvPlanStart, Fields: map[string]float64{"nodes": 3, "replan": 1}})

	reg := rec.Registry()
	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"ires_attempts_total", map[string]string{"engine": "Spark"}, 1},
		{"ires_attempts_total", map[string]string{"engine": "Hama"}, 1},
		{"ires_speculative_launches_total", nil, 1},
		{"ires_speculative_wins_total", nil, 1},
		{"ires_attempt_failures_total", map[string]string{"engine": "Spark"}, 1},
		{"ires_retries_total", nil, 1},
		{"ires_containers_allocated_total", nil, 4},
		{"ires_containers_live", nil, 0},
		{"ires_containers_lost_total", nil, 1},
		{"ires_breaker_trips_total", map[string]string{"engine": "Spark"}, 1},
		{"ires_replans_total", nil, 1},
		{"ires_faults_injected_total", map[string]string{"kind": "transient"}, 1},
		{"ires_faults_injected_total", map[string]string{"kind": "straggler"}, 1},
		{"ires_node_crashes_total", nil, 1},
		{"ires_plans_total", map[string]string{"kind": "plan"}, 1},
		{"ires_plans_total", map[string]string{"kind": "replan"}, 1},
	}
	for _, c := range checks {
		if got := reg.Value(c.name, c.labels); got != c.want {
			t.Errorf("%s%v = %v, want %v", c.name, c.labels, got, c.want)
		}
	}
	if got := reg.Sum("ires_attempts_total"); got != 2 {
		t.Errorf("Sum(attempts) = %v, want 2", got)
	}
}

func TestRecorderRingDropsOldest(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Emit(Event{Type: EvAttemptStart})
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("retained seq range [%d,%d], want [7,10]", evs[0].Seq, evs[3].Seq)
	}
	if rec.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", rec.Dropped())
	}
	if got := rec.Since(8); len(got) != 2 || got[0].Seq != 9 {
		t.Fatalf("Since(8) = %+v, want seq 9,10", got)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	render := func() string {
		reg := NewRegistry()
		reg.Help("ires_attempts_total", "attempts")
		reg.Inc("ires_attempts_total", map[string]string{"engine": "Spark"}, 2)
		reg.Inc("ires_attempts_total", map[string]string{"engine": "Hama"}, 1)
		reg.Set("ires_vtime_seconds", nil, 12.5)
		var b bytes.Buffer
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		return b.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	want := `# HELP ires_attempts_total attempts
# TYPE ires_attempts_total counter
ires_attempts_total{engine="Hama"} 1
ires_attempts_total{engine="Spark"} 2
# TYPE ires_vtime_seconds gauge
ires_vtime_seconds 12.5
`
	if first != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", first, want)
	}
}

// The registry and recorder must tolerate concurrent emitters and readers
// (run with -race).
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Emit(Event{Type: EvAttemptStart, Engine: "Spark"})
				rec.Emit(Event{Type: EvContainerAlloc, Fields: map[string]float64{"containers": 2}})
				rec.Registry().Value("ires_attempts_total", map[string]string{"engine": "Spark"})
				rec.Events()
				rec.Since(rec.Seq() - 5)
				var b bytes.Buffer
				_ = rec.Registry().WritePrometheus(&b)
			}
		}()
	}
	wg.Wait()
	if got := rec.Registry().Sum("ires_attempts_total"); got != 1600 {
		t.Fatalf("attempts = %v, want 1600", got)
	}
}

func TestGanttDOTPairsAttempts(t *testing.T) {
	events := []Event{
		{Type: EvAttemptStart, Step: "a", Engine: "Spark", Attempt: 1, VTimeSec: 0},
		{Type: EvAttemptFail, Step: "a", Engine: "Spark", Attempt: 1, VTimeSec: 5},
		{Type: EvAttemptStart, Step: "a", Engine: "Spark", Attempt: 2, VTimeSec: 6},
		{Type: EvAttemptStart, Step: "a", Engine: "Hama", Attempt: 3, Speculative: true, VTimeSec: 8},
		{Type: EvAttemptFinish, Step: "a", Engine: "Spark", Attempt: 2, VTimeSec: 10},
	}
	dot := GanttDOT(events)
	for _, want := range []string{
		"digraph gantt",
		`label="Spark"`,
		`label="Hama"`,
		"[0.0s, 5.0s] #1", "style=dashed",
		"[6.0s, 10.0s] #2",
		"peripheries=2",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("GanttDOT output missing %q:\n%s", want, dot)
		}
	}
}
