package trace

import (
	"encoding/json"
	"io"
	"sync"
)

// DefaultMaxEvents bounds the Recorder's in-memory log; past it the oldest
// events are dropped (the registry keeps counting regardless).
const DefaultMaxEvents = 1 << 16

// Recorder is a Tracer that appends events to a bounded in-memory log and
// aggregates them into a Registry. It is safe for concurrent use.
//
// The log retains the latest max events. Internally the buffer is allowed to
// grow to twice that before it is compacted in one bulk copy, so a long-lived
// recorder pays amortized O(1) per Emit instead of an O(max) copy per event
// once the window is full; readers always see exactly the retained window.
type Recorder struct {
	mu     sync.Mutex
	seq    int64
	events []Event
	max    int
	reg    *Registry
}

// NewRecorder builds a recorder holding at most max events (DefaultMaxEvents
// when max <= 0).
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultMaxEvents
	}
	reg := NewRegistry()
	reg.Help("ires_attempts_total", "operator/move execution attempts started, by engine")
	reg.Help("ires_attempt_failures_total", "failed execution attempts, by engine")
	reg.Help("ires_retries_total", "same-engine retries scheduled after transient failures")
	reg.Help("ires_speculative_launches_total", "straggler backup copies launched")
	reg.Help("ires_speculative_wins_total", "backup copies that beat the original attempt")
	reg.Help("ires_breaker_trips_total", "circuit-breaker trips, by engine")
	reg.Help("ires_replans_total", "fault-triggered replanning rounds")
	reg.Help("ires_faults_injected_total", "chaos-layer injections, by kind")
	reg.Help("ires_containers_lost_total", "containers invalidated by node failures")
	reg.Help("ires_containers_live", "currently allocated containers")
	reg.Help("ires_node_crashes_total", "cluster node crashes")
	reg.Help("ires_plans_total", "planner invocations, by kind")
	reg.Help("ires_planner_cache_hits_total", "planner DP memo hits (operator nodes served from cache)")
	reg.Help("ires_planner_cache_misses_total", "planner DP memo misses (operator nodes evaluated cold)")
	reg.Help("ires_planner_epoch", "planner cache epoch (wholesale flushes: untyped changes and the cache-size bound)")
	reg.Help("ires_planner_partial_invalidations_total", "typed invalidation events (engine flap, profiler retrain, library change) applied as scoped partial evictions")
	reg.Help("ires_planner_evicted_entries_total", "planner cache node results evicted by partial invalidation, downstream dependents included")
	reg.Help("ires_vtime_seconds", "current virtual time of the simulation")
	reg.Help("ires_runs_submitted_total", "workflow runs submitted to the scheduler")
	reg.Help("ires_runs_admitted_total", "workflow runs admitted (granted a node lease)")
	reg.Help("ires_runs_finished_total", "workflow runs reaching a terminal state, by status")
	reg.Help("ires_runs_suspended_total", "runs preempted (lease revoked at an operator boundary)")
	reg.Help("ires_runs_resumed_total", "preempted runs re-admitted and replanned from their done set")
	reg.Help("ires_runs_rejected_total", "runs rejected outright by the admission policy")
	reg.Help("ires_lease_grants_total", "node leases granted at admission/resume")
	reg.Help("ires_lease_grows_total", "elastic lease grow operations")
	reg.Help("ires_lease_shrinks_total", "elastic lease shrink operations")
	reg.Help("ires_lease_revokes_total", "lease revocations (voluntary release or preemption)")
	reg.Help("ires_attempt_duration_vseconds", "operator attempt durations in virtual seconds, by engine")
	reg.Help("ires_sched_queue_wait_vseconds", "virtual seconds runs spent queued before admission")
	reg.Help("ires_sched_suspension_vseconds", "virtual seconds preempted runs spent suspended before resuming")
	reg.Help("ires_checkpoint_writes_total", "sub-operator checkpoints written at iteration/partition boundaries, by engine")
	reg.Help("ires_checkpoint_restores_total", "attempts seeded from a stored checkpoint instead of unit zero")
	reg.Help("ires_checkpoints_lost_total", "checkpoints whose last replica died with a crashed node")
	reg.Help("ires_checkpoint_write_vseconds_total", "virtual seconds spent writing checkpoints")
	reg.Help("ires_attempt_yields_total", "attempts suspended cooperatively at a checkpoint boundary")
	reg.Help("ires_preempt_latency_vseconds", "virtual seconds from preempt request to lease revocation")
	reg.DeclareHistogram("ires_attempt_duration_vseconds", DefBuckets)
	reg.DeclareHistogram("ires_sched_queue_wait_vseconds", DefBuckets)
	reg.DeclareHistogram("ires_sched_suspension_vseconds", DefBuckets)
	reg.DeclareHistogram("ires_preempt_latency_vseconds", DefBuckets)
	return &Recorder{max: max, reg: reg}
}

// Emit implements Tracer: the event gets the next sequence number, is
// appended to the log and folded into the registry.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	r.events = append(r.events, ev)
	if len(r.events) > 2*r.max {
		r.events = append(r.events[:0:0], r.events[len(r.events)-r.max:]...)
	}
	r.mu.Unlock()
	r.aggregate(ev)
}

// retainedLocked returns the current retention window (the latest max
// events) without copying; the caller holds r.mu.
func (r *Recorder) retainedLocked() []Event {
	if len(r.events) > r.max {
		return r.events[len(r.events)-r.max:]
	}
	return r.events
}

// aggregate maintains the counter/gauge registry from the event stream.
func (r *Recorder) aggregate(ev Event) {
	reg := r.reg
	reg.Inc("ires_trace_events_total", map[string]string{"type": string(ev.Type)}, 1)
	if ev.VTimeSec > reg.Value("ires_vtime_seconds", nil) {
		reg.Set("ires_vtime_seconds", nil, ev.VTimeSec)
	}
	engine := map[string]string{"engine": ev.Engine}
	switch ev.Type {
	case EvAttemptStart:
		reg.Inc("ires_attempts_total", engine, 1)
		if ev.Speculative {
			reg.Inc("ires_speculative_launches_total", nil, 1)
		}
	case EvAttemptFinish:
		reg.Inc("ires_attempt_successes_total", engine, 1)
		reg.Observe("ires_attempt_duration_vseconds", engine, ev.Fields["durSec"])
		if ev.Speculative {
			reg.Inc("ires_speculative_wins_total", nil, 1)
		}
	case EvAttemptFail:
		reg.Inc("ires_attempt_failures_total", engine, 1)
	case EvAttemptRetry:
		reg.Inc("ires_retries_total", nil, 1)
	case EvSpeculate:
		reg.Inc("ires_speculation_deadlines_total", nil, 1)
	case EvContainerAlloc:
		n := ev.Fields["containers"]
		reg.Inc("ires_containers_allocated_total", nil, n)
		reg.Add("ires_containers_live", nil, n)
	case EvContainerRelease:
		n := ev.Fields["containers"]
		reg.Inc("ires_containers_released_total", nil, n)
		reg.Add("ires_containers_live", nil, -n)
	case EvContainerLost:
		n := ev.Fields["containers"]
		reg.Inc("ires_containers_lost_total", nil, n)
		reg.Add("ires_containers_live", nil, -n)
	case EvBreakerTrip:
		reg.Inc("ires_breaker_trips_total", engine, 1)
	case EvBreakerReset:
		reg.Inc("ires_breaker_resets_total", engine, 1)
	case EvReplan:
		reg.Inc("ires_replans_total", nil, 1)
	case EvNodeCrash:
		reg.Inc("ires_node_crashes_total", nil, 1)
	case EvNodeRestore:
		reg.Inc("ires_node_restores_total", nil, 1)
	case EvFaultTransient:
		reg.Inc("ires_faults_injected_total", map[string]string{"kind": "transient"}, 1)
	case EvFaultStraggler:
		reg.Inc("ires_faults_injected_total", map[string]string{"kind": "straggler"}, 1)
	case EvFaultOutage:
		reg.Inc("ires_faults_injected_total", map[string]string{"kind": "outage"}, 1)
	case EvRunSubmit:
		reg.Inc("ires_runs_submitted_total", nil, 1)
	case EvRunAdmit:
		reg.Inc("ires_runs_admitted_total", nil, 1)
		reg.Observe("ires_sched_queue_wait_vseconds", nil, ev.Fields["waitSec"])
	case EvRunSuspend:
		reg.Inc("ires_runs_suspended_total", nil, 1)
		if lat, ok := ev.Fields["latencySec"]; ok {
			reg.Observe("ires_preempt_latency_vseconds", nil, lat)
		}
	case EvCheckpointWrite:
		reg.Inc("ires_checkpoint_writes_total", engine, 1)
		reg.Inc("ires_checkpoint_write_vseconds_total", nil, ev.Fields["writeSec"])
	case EvCheckpointRestore:
		reg.Inc("ires_checkpoint_restores_total", nil, 1)
	case EvCheckpointLost:
		reg.Inc("ires_checkpoints_lost_total", nil, 1)
	case EvAttemptYield:
		reg.Inc("ires_attempt_yields_total", nil, 1)
	case EvRunResume:
		reg.Inc("ires_runs_resumed_total", nil, 1)
		reg.Observe("ires_sched_suspension_vseconds", nil, ev.Fields["suspendedSec"])
	case EvRunReject:
		reg.Inc("ires_runs_rejected_total", nil, 1)
		reg.Inc("ires_runs_finished_total", map[string]string{"status": "rejected"}, 1)
	case EvLeaseGrant:
		reg.Inc("ires_lease_grants_total", nil, 1)
	case EvLeaseGrow:
		reg.Inc("ires_lease_grows_total", nil, 1)
	case EvLeaseShrink:
		reg.Inc("ires_lease_shrinks_total", nil, 1)
	case EvLeaseRevoke:
		reg.Inc("ires_lease_revokes_total", nil, 1)
	case EvRunFinish:
		status := "succeeded"
		if ev.Error != "" {
			status = "failed"
		}
		reg.Inc("ires_runs_finished_total", map[string]string{"status": status}, 1)
	case EvRunCancel:
		reg.Inc("ires_runs_finished_total", map[string]string{"status": "canceled"}, 1)
	case EvPlanStart:
		kind := "plan"
		if ev.Fields["replan"] > 0 {
			kind = "replan"
		} else if ev.Fields["pareto"] > 0 {
			kind = "pareto"
		}
		reg.Inc("ires_plans_total", map[string]string{"kind": kind}, 1)
	}
}

// Registry exposes the aggregated counters and gauges.
func (r *Recorder) Registry() *Registry { return r.reg }

// Seq returns the sequence number of the latest event (0 when empty).
func (r *Recorder) Seq() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Events returns a copy of the retained event log.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.retainedLocked()...)
}

// Since returns the retained events with Seq > seq — the capture primitive
// for per-run timelines.
func (r *Recorder) Since(seq int64) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	retained := r.retainedLocked()
	// Events are seq-ordered; binary search would be overkill at this size.
	for i, ev := range retained {
		if ev.Seq > seq {
			return append([]Event(nil), retained[i:]...)
		}
	}
	return nil
}

// ForRun returns the retained events belonging to one scheduler run,
// renumbered 1..n so a run's log is byte-stable regardless of what other
// runs interleaved with it in the global sequence.
func (r *Recorder) ForRun(runID string) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, ev := range r.retainedLocked() {
		if ev.RunID == runID {
			ev.Seq = int64(len(out) + 1)
			out = append(out, ev)
		}
	}
	return out
}

// Dropped reports how many events aged out of the bounded log.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d := r.seq - int64(r.max); d > 0 {
		return d
	}
	return 0
}

// WriteJSONL writes events as JSON lines (one event per line).
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
