package trace

import (
	"fmt"
	"sort"
	"strings"
)

// ganttBar is one reconstructed attempt interval.
type ganttBar struct {
	step        string
	engine      string
	start       float64
	end         float64
	failed      bool
	speculative bool
	attempt     int
}

// GanttDOT reconstructs the executed timeline from an event log and renders
// it as a Graphviz digraph: one cluster per engine, one node per attempt
// labelled with its [start, end] virtual-time interval, edges ordering the
// attempts on each engine chronologically. Failed attempts render dashed,
// speculative copies with a doubled border.
func GanttDOT(events []Event) string {
	type liveKey struct {
		step    string
		engine  string
		attempt int
		spec    bool
	}
	live := make(map[liveKey]Event)
	var bars []ganttBar
	closeBar := func(start Event, endSec float64, failed bool) {
		bars = append(bars, ganttBar{
			step:        start.Step,
			engine:      start.Engine,
			start:       start.VTimeSec,
			end:         endSec,
			failed:      failed,
			speculative: start.Speculative,
			attempt:     start.Attempt,
		})
	}
	for _, ev := range events {
		k := liveKey{ev.Step, ev.Engine, ev.Attempt, ev.Speculative}
		switch ev.Type {
		case EvAttemptStart:
			live[k] = ev
		case EvAttemptFinish, EvAttemptFail:
			if start, ok := live[k]; ok {
				closeBar(start, ev.VTimeSec, ev.Type == EvAttemptFail)
				delete(live, k)
			}
		}
	}
	// Attempts still open at the end of the log (e.g. lost to a node crash
	// whose failure was attributed without engine/attempt detail) close at
	// their own start so they remain visible.
	for _, start := range live {
		closeBar(start, start.VTimeSec, true)
	}

	sort.Slice(bars, func(i, j int) bool {
		if bars[i].engine != bars[j].engine {
			return bars[i].engine < bars[j].engine
		}
		if bars[i].start != bars[j].start {
			return bars[i].start < bars[j].start
		}
		return bars[i].step < bars[j].step
	})

	var b strings.Builder
	b.WriteString("digraph gantt {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	cluster := 0
	for i := 0; i < len(bars); {
		j := i
		for j < len(bars) && bars[j].engine == bars[i].engine {
			j++
		}
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", cluster, bars[i].engine)
		for k := i; k < j; k++ {
			bar := bars[k]
			style := "solid"
			if bar.failed {
				style = "dashed"
			}
			peripheries := 1
			if bar.speculative {
				peripheries = 2
			}
			fmt.Fprintf(&b, "    b%d [label=\"%s\\n[%.1fs, %.1fs] #%d\", style=%s, peripheries=%d];\n",
				k, bar.step, bar.start, bar.end, bar.attempt, style, peripheries)
		}
		for k := i; k < j-1; k++ {
			fmt.Fprintf(&b, "    b%d -> b%d;\n", k, k+1)
		}
		b.WriteString("  }\n")
		cluster++
		i = j
	}
	b.WriteString("}\n")
	return b.String()
}
