package metadata

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Parse reads a description file in the dotted-property format of D3.3 §3:
//
//	# comment
//	Constraints.Engine=Spark
//	Constraints.OpSpecification.Algorithm.name = LineCount
//	Execution.path=hdfs:///user/root/asap-server.log
//
// Blank lines and lines starting with '#' or '//' are ignored. Whitespace
// around keys and values is trimmed. Escaped colons ("\:") — which appear in
// the paper's HDFS paths — are unescaped.
func Parse(r io.Reader) (*Tree, error) {
	t := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("metadata: line %d: missing '=' in %q", lineNo, line)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		val = strings.ReplaceAll(val, `\:`, ":")
		if key == "" {
			return nil, fmt.Errorf("metadata: line %d: empty key", lineNo)
		}
		if err := validateKey(key); err != nil {
			return nil, fmt.Errorf("metadata: line %d: %v", lineNo, err)
		}
		t.Set(key, val)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metadata: read: %w", err)
	}
	return t, nil
}

// ParseString parses a description from a string.
func ParseString(s string) (*Tree, error) {
	return Parse(strings.NewReader(s))
}

// MustParse parses a description and panics on error. Intended for
// package-level literals in tests and examples.
func MustParse(s string) *Tree {
	t, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return t
}

func validateKey(key string) error {
	for _, part := range strings.Split(key, ".") {
		if part == "" {
			return fmt.Errorf("empty path segment in key %q", key)
		}
	}
	return nil
}
