// Package metadata implements the extensible meta-data description framework
// of IReS (D3.3 §2.1). Operators and datasets are described by generic,
// string-labelled trees whose first levels are predefined (Constraints,
// Execution, Optimization) and whose deeper levels are user-defined.
//
// Trees are parsed from the dotted-property format used throughout the
// paper's operator description files:
//
//	Constraints.Engine=Spark
//	Constraints.OpSpecification.Algorithm.name=LineCount
//	Execution.Argument0=In0.path.local
//
// Matching between abstract and materialized descriptions is a one-pass,
// merge-style walk over lexicographically ordered children, O(t) in the tree
// size, exactly as the paper's planner requires.
package metadata

import (
	"fmt"
	"sort"
	"strings"
)

// Wildcard is the value an abstract description uses to match any value of a
// field in a materialized description.
const Wildcard = "*"

// Predefined top-level subtrees (D3.3 §2.1).
const (
	SectionConstraints  = "Constraints"
	SectionExecution    = "Execution"
	SectionOptimization = "Optimization"
)

// Tree is a string-labelled metadata tree. Interior nodes carry children;
// leaves carry a Value. A node may have both a value and children (rare, but
// the format does not forbid it). The zero value is an empty tree ready to
// use.
type Tree struct {
	value    string
	children map[string]*Tree
	keys     []string // sorted child labels; maintained on insert
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// FromProperties builds a tree from dotted-path properties. It is the
// programmatic equivalent of parsing a description file.
func FromProperties(props map[string]string) *Tree {
	t := New()
	// Insert in sorted order for deterministic construction.
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.Set(k, props[k])
	}
	return t
}

// Value returns the value stored at the node itself.
func (t *Tree) Value() string {
	if t == nil {
		return ""
	}
	return t.value
}

// SetValue sets the value stored at the node itself.
func (t *Tree) SetValue(v string) { t.value = v }

// Set stores value at the dotted path, creating intermediate nodes.
func (t *Tree) Set(path, value string) {
	node := t
	if path != "" {
		for _, part := range strings.Split(path, ".") {
			node = node.child(part, true)
		}
	}
	node.value = value
}

// Get returns the value at the dotted path and whether the node exists.
func (t *Tree) Get(path string) (string, bool) {
	n := t.Node(path)
	if n == nil {
		return "", false
	}
	return n.value, true
}

// GetDefault returns the value at path, or def when the node is absent.
func (t *Tree) GetDefault(path, def string) string {
	if v, ok := t.Get(path); ok && v != "" {
		return v
	}
	return def
}

// Node returns the node at the dotted path, or nil when absent. An empty
// path returns the receiver.
func (t *Tree) Node(path string) *Tree {
	if t == nil {
		return nil
	}
	node := t
	if path == "" {
		return node
	}
	for _, part := range strings.Split(path, ".") {
		node = node.child(part, false)
		if node == nil {
			return nil
		}
	}
	return node
}

// Delete removes the subtree at the dotted path. It reports whether a node
// was removed.
func (t *Tree) Delete(path string) bool {
	if t == nil || path == "" {
		return false
	}
	parts := strings.Split(path, ".")
	node := t
	for _, part := range parts[:len(parts)-1] {
		node = node.child(part, false)
		if node == nil {
			return false
		}
	}
	last := parts[len(parts)-1]
	if _, ok := node.children[last]; !ok {
		return false
	}
	delete(node.children, last)
	for i, k := range node.keys {
		if k == last {
			node.keys = append(node.keys[:i], node.keys[i+1:]...)
			break
		}
	}
	return true
}

// Children returns the child labels in lexicographic order.
func (t *Tree) Children() []string {
	if t == nil {
		return nil
	}
	out := make([]string, len(t.keys))
	copy(out, t.keys)
	return out
}

// Child returns the named child node, or nil.
func (t *Tree) Child(label string) *Tree { return t.child(label, false) }

// Len reports the number of nodes in the tree, excluding the root.
func (t *Tree) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, k := range t.keys {
		n += 1 + t.children[k].Len()
	}
	return n
}

// IsLeaf reports whether the node has no children.
func (t *Tree) IsLeaf() bool { return t == nil || len(t.keys) == 0 }

func (t *Tree) child(label string, create bool) *Tree {
	if t == nil {
		return nil
	}
	if c, ok := t.children[label]; ok {
		return c
	}
	if !create {
		return nil
	}
	if t.children == nil {
		t.children = make(map[string]*Tree)
	}
	c := &Tree{}
	t.children[label] = c
	i := sort.SearchStrings(t.keys, label)
	t.keys = append(t.keys, "")
	copy(t.keys[i+1:], t.keys[i:])
	t.keys[i] = label
	return c
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	if t == nil {
		return nil
	}
	c := &Tree{value: t.value}
	if len(t.keys) > 0 {
		c.children = make(map[string]*Tree, len(t.keys))
		c.keys = make([]string, len(t.keys))
		copy(c.keys, t.keys)
		for k, v := range t.children {
			c.children[k] = v.Clone()
		}
	}
	return c
}

// Merge overlays other onto the receiver: values present in other win,
// subtrees are merged recursively. Merging a nil tree is a no-op.
func (t *Tree) Merge(other *Tree) {
	if other == nil {
		return
	}
	if other.value != "" {
		t.value = other.value
	}
	for _, k := range other.keys {
		t.child(k, true).Merge(other.children[k])
	}
}

// Walk visits every node in lexicographic path order, calling fn with the
// dotted path and node. The root is visited with an empty path.
func (t *Tree) Walk(fn func(path string, node *Tree)) {
	t.walk("", fn)
}

func (t *Tree) walk(prefix string, fn func(string, *Tree)) {
	if t == nil {
		return
	}
	fn(prefix, t)
	for _, k := range t.keys {
		p := k
		if prefix != "" {
			p = prefix + "." + k
		}
		t.children[k].walk(p, fn)
	}
}

// Properties flattens the tree back into sorted dotted-path/value pairs.
// Only nodes holding non-empty values are emitted.
func (t *Tree) Properties() []Property {
	var out []Property
	t.Walk(func(path string, node *Tree) {
		if path != "" && node.value != "" {
			out = append(out, Property{Path: path, Value: node.value})
		}
	})
	return out
}

// Property is one flattened key=value line of a description file.
type Property struct {
	Path  string
	Value string
}

func (p Property) String() string { return p.Path + "=" + p.Value }

// String renders the tree in description-file format.
func (t *Tree) String() string {
	var b strings.Builder
	for _, p := range t.Properties() {
		fmt.Fprintln(&b, p)
	}
	return b.String()
}

// Equal reports whether two trees hold identical structure and values.
func (t *Tree) Equal(other *Tree) bool {
	if t == nil || other == nil {
		return t.Len() == 0 && other.Len() == 0 && t.Value() == other.Value()
	}
	if t.value != other.value || len(t.keys) != len(other.keys) {
		return false
	}
	for i, k := range t.keys {
		if other.keys[i] != k {
			return false
		}
		if !t.children[k].Equal(other.children[k]) {
			return false
		}
	}
	return true
}
