package metadata

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The paper's running example: an abstract TF_IDF operator and its
// materialized mahout/Hadoop implementation (D3.3 Figures 2-3).
const abstractTFIDF = `
Constraints.Input.number=1
Constraints.OpSpecification.Algorithm.name=TF_IDF
Constraints.Output.number=1
`

const materializedTFIDFMahout = `
Constraints.Engine=Hadoop
Constraints.Input.number=1
Constraints.Input0.type=SequenceFile
Constraints.Input0.Engine.FS=HDFS
Constraints.OpSpecification.Algorithm.name=TF_IDF
Constraints.Output.number=1
Constraints.Output0.type=SequenceFile
Execution.LuaScript=tfidf.lua
Optimization.model.execTime=UserFunction
`

func TestPaperExampleMatches(t *testing.T) {
	a := MustParse(abstractTFIDF)
	m := MustParse(materializedTFIDFMahout)
	if !Matches(a, m) {
		t.Fatalf("abstract TF_IDF should match mahout implementation: %s",
			MatchReason(a, m))
	}
	// A different algorithm must not match.
	other := m.Clone()
	other.Set("Constraints.OpSpecification.Algorithm.name", "kmeans")
	if Matches(a, other) {
		t.Fatal("TF_IDF matched a kmeans operator")
	}
}

func TestDatasetToOperatorMatching(t *testing.T) {
	// Dataset description (Figure 2.a) vs the operator's Input0 constraints.
	dataset := MustParse(`
Constraints.Engine.FS=HDFS
Constraints.type=SequenceFile
Execution.path=hdfs:///user/crawl
Optimization.documents=50000
`)
	inputReq := MustParse(`
Engine.FS=HDFS
type=SequenceFile
`)
	if !Matches(inputReq, dataset.Node("Constraints")) {
		t.Fatal("dataset should satisfy operator input constraints")
	}
	badReq := MustParse("type=arff")
	if Matches(badReq, dataset.Node("Constraints")) {
		t.Fatal("arff requirement matched a SequenceFile dataset")
	}
}

func TestWildcardMatching(t *testing.T) {
	a := New()
	a.Set("Constraints.Engine", Wildcard)
	withEngine := MustParse("Constraints.Engine=Spark")
	without := MustParse("Constraints.Input.number=1")
	if !Matches(a, withEngine) {
		t.Fatal("wildcard should match any value")
	}
	if Matches(a, without) {
		t.Fatal("wildcard should require field presence")
	}
}

func TestEmptyAbstractValueIsUnconstrained(t *testing.T) {
	a := New()
	a.Set("Constraints.Engine", "") // node exists, no constraint
	m := MustParse("Constraints.Input.number=1")
	if !Matches(a, m) {
		t.Fatal("empty abstract value must not constrain")
	}
}

func TestMatchesNilAbstract(t *testing.T) {
	if !Matches(nil, MustParse("a=1")) {
		t.Fatal("nil abstract matches anything")
	}
	if !Matches(New(), nil) {
		t.Fatal("empty abstract matches nil materialized")
	}
}

func TestMatchReason(t *testing.T) {
	a := MustParse("Constraints.Engine=Spark")
	m := MustParse("Constraints.Engine=Hadoop")
	if r := MatchReason(a, m); r == "" {
		t.Fatal("expected a mismatch reason")
	}
	if r := MatchReason(a, MustParse("Constraints.Engine=Spark")); r != "" {
		t.Fatalf("unexpected reason for matching trees: %s", r)
	}
	if r := MatchReason(a, New()); r == "" {
		t.Fatal("expected missing-field reason")
	}
}

// Property: every materialized tree matches an "erasure" of itself — a tree
// with a random subset of its fields, with some values replaced by "*".
func TestQuickErasureMatches(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := FromProperties(randomProps(r))
		a := New()
		for _, p := range m.Properties() {
			switch r.Intn(3) {
			case 0:
				a.Set(p.Path, p.Value)
			case 1:
				a.Set(p.Path, Wildcard)
			case 2:
				// omit
			}
		}
		return Matches(a, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Matches(a, m) agrees with MatchReason(a, m) == "".
func TestQuickMatchesAgreesWithReason(t *testing.T) {
	f := func(seedA, seedM int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rm := rand.New(rand.NewSource(seedM))
		a := FromProperties(randomProps(ra))
		m := FromProperties(randomProps(rm))
		return Matches(a, m) == (MatchReason(a, m) == "")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: self-match — every tree matches itself (its values state exact
// constraints that it itself satisfies).
func TestQuickSelfMatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := FromProperties(randomProps(r))
		return Matches(m, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString("novalue"); err == nil {
		t.Fatal("expected error for missing '='")
	}
	if _, err := ParseString("=v"); err == nil {
		t.Fatal("expected error for empty key")
	}
	if _, err := ParseString("a..b=v"); err == nil {
		t.Fatal("expected error for empty segment")
	}
}

func TestParseCommentsAndEscapes(t *testing.T) {
	tr, err := ParseString("# comment\n\n// also comment\nExecution.path=hdfs\\:///user/root/log\n")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Get("Execution.path"); v != "hdfs:///user/root/log" {
		t.Fatalf("escaped colon not handled: %q", v)
	}
}
