package metadata

// Matching semantics (D3.3 §2.1, §2.2.3):
//
//   - An *abstract* description matches a *materialized* one when every
//     constraint the abstract tree states is consistent in the materialized
//     tree. "Consistent" means: equal leaf values, or the abstract value is
//     the Wildcard "*" (any materialized value, which must exist), or the
//     abstract node is an interior node whose children all match.
//   - Fields present only in the materialized tree are ignored — a
//     materialized operator may carry arbitrarily richer metadata.
//   - Matching is a single pass over the abstract tree with constant-time
//     child lookups in the materialized tree, O(t) in the number of nodes.
//
// The same primitive is used to match datasets to operator inputs: the
// operator's Constraints.InputN subtree plays the abstract role and the
// dataset's Constraints subtree the materialized role.

// Matches reports whether the materialized tree satisfies every constraint
// of the abstract tree.
func Matches(abstract, materialized *Tree) bool {
	return matches(abstract, materialized)
}

func matches(a, m *Tree) bool {
	if a == nil {
		return true
	}
	if a.value != "" {
		// A stated constraint (including the wildcard, which requires
		// presence with any value) needs a materialized counterpart.
		if m == nil {
			return false
		}
		if a.value != Wildcard && m.value != a.value {
			return false
		}
	}
	for _, k := range a.keys {
		var mc *Tree
		if m != nil {
			mc = m.children[k]
		}
		if !matches(a.children[k], mc) {
			return false
		}
	}
	return true
}

// MatchReason explains why a materialized tree fails to satisfy an abstract
// tree; it returns "" when the trees match. Useful for diagnostics in the
// operator library and the CLI.
func MatchReason(abstract, materialized *Tree) string {
	return matchReason("", abstract, materialized)
}

func matchReason(prefix string, a, m *Tree) string {
	if a == nil {
		return ""
	}
	at := func(p string) string {
		if p == "" {
			return "(root)"
		}
		return p
	}
	if a.value != "" && a.value != Wildcard {
		if m == nil {
			return "missing field " + at(prefix)
		}
		if m.value != a.value {
			return "field " + at(prefix) + ": want " + a.value + ", have " + m.value
		}
	}
	if a.value == Wildcard && m == nil {
		return "missing field " + at(prefix) + " (wildcard requires presence)"
	}
	for _, k := range a.keys {
		p := k
		if prefix != "" {
			p = prefix + "." + k
		}
		var mc *Tree
		if m != nil {
			mc = m.children[k]
		}
		if mc == nil {
			if reason := matchReason(p, a.children[k], nil); reason != "" {
				return reason
			}
			continue
		}
		if reason := matchReason(p, a.children[k], mc); reason != "" {
			return reason
		}
	}
	return ""
}
