package metadata

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	tr := New()
	tr.Set("Constraints.Engine", "Spark")
	tr.Set("Constraints.Input.number", "1")
	tr.Set("Execution.path", "hdfs:///data")

	if v, ok := tr.Get("Constraints.Engine"); !ok || v != "Spark" {
		t.Fatalf("Get(Constraints.Engine) = %q, %v", v, ok)
	}
	if v, ok := tr.Get("Constraints.Input.number"); !ok || v != "1" {
		t.Fatalf("Get(Constraints.Input.number) = %q, %v", v, ok)
	}
	if _, ok := tr.Get("Constraints.Output"); ok {
		t.Fatal("Get on absent path reported ok")
	}
	if got := tr.GetDefault("Missing.path", "def"); got != "def" {
		t.Fatalf("GetDefault = %q", got)
	}
}

func TestSetOverwrite(t *testing.T) {
	tr := New()
	tr.Set("a.b", "1")
	tr.Set("a.b", "2")
	if v, _ := tr.Get("a.b"); v != "2" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if n := tr.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}

func TestChildrenSorted(t *testing.T) {
	tr := New()
	for _, k := range []string{"zeta", "alpha", "mid", "beta"} {
		tr.Set(k, "v")
	}
	got := tr.Children()
	want := []string{"alpha", "beta", "mid", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Children = %v, want %v", got, want)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	tr.Set("a.b.c", "1")
	tr.Set("a.b.d", "2")
	if !tr.Delete("a.b.c") {
		t.Fatal("Delete existing returned false")
	}
	if _, ok := tr.Get("a.b.c"); ok {
		t.Fatal("deleted node still present")
	}
	if v, ok := tr.Get("a.b.d"); !ok || v != "2" {
		t.Fatal("sibling removed by Delete")
	}
	if tr.Delete("a.b.c") {
		t.Fatal("Delete absent returned true")
	}
	if tr.Delete("") {
		t.Fatal("Delete empty path returned true")
	}
}

func TestCloneIndependent(t *testing.T) {
	tr := New()
	tr.Set("a.b", "1")
	cl := tr.Clone()
	cl.Set("a.b", "2")
	cl.Set("a.c", "3")
	if v, _ := tr.Get("a.b"); v != "1" {
		t.Fatal("Clone shares storage with original")
	}
	if _, ok := tr.Get("a.c"); ok {
		t.Fatal("Clone insert leaked into original")
	}
}

func TestMerge(t *testing.T) {
	base := MustParse("a.x=1\na.y=2")
	over := MustParse("a.y=9\nb.z=3")
	base.Merge(over)
	for path, want := range map[string]string{"a.x": "1", "a.y": "9", "b.z": "3"} {
		if v, _ := base.Get(path); v != want {
			t.Errorf("after merge, %s = %q, want %q", path, v, want)
		}
	}
}

func TestPropertiesRoundTrip(t *testing.T) {
	src := "Constraints.Engine=Spark\nConstraints.Input.number=1\nExecution.path=hdfs:///x"
	tr := MustParse(src)
	props := tr.Properties()
	m := make(map[string]string)
	for _, p := range props {
		m[p.Path] = p.Value
	}
	rt := FromProperties(m)
	if !tr.Equal(rt) {
		t.Fatalf("round trip mismatch:\n%v\nvs\n%v", tr, rt)
	}
}

func TestEqual(t *testing.T) {
	a := MustParse("x.y=1\nx.z=2")
	b := MustParse("x.z=2\nx.y=1")
	if !a.Equal(b) {
		t.Fatal("order-insensitive equality failed")
	}
	c := MustParse("x.y=1")
	if a.Equal(c) {
		t.Fatal("unequal trees reported equal")
	}
	var nilTree *Tree
	if !nilTree.Equal(New()) {
		t.Fatal("nil vs empty should be equal")
	}
}

func TestWalkOrder(t *testing.T) {
	tr := MustParse("b.x=1\na.y=2\na.b=3")
	var paths []string
	tr.Walk(func(p string, _ *Tree) {
		if p != "" {
			paths = append(paths, p)
		}
	})
	want := []string{"a", "a.b", "a.y", "b", "b.x"}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("Walk order = %v, want %v", paths, want)
	}
}

func TestNilTreeSafe(t *testing.T) {
	var tr *Tree
	if tr.Node("a.b") != nil {
		t.Fatal("nil tree Node should be nil")
	}
	if tr.Len() != 0 || !tr.IsLeaf() || tr.Value() != "" {
		t.Fatal("nil tree accessors misbehave")
	}
	if tr.Clone() != nil {
		t.Fatal("Clone of nil should be nil")
	}
}

// randomProps generates a random property map for property-based tests.
func randomProps(r *rand.Rand) map[string]string {
	segs := []string{"Constraints", "Execution", "Optimization", "Engine", "Input0", "Output0", "type", "path", "name", "Algorithm"}
	n := r.Intn(12) + 1
	props := make(map[string]string, n)
	for i := 0; i < n; i++ {
		depth := r.Intn(4) + 1
		parts := make([]string, depth)
		for d := range parts {
			parts[d] = segs[r.Intn(len(segs))]
		}
		key := strings.Join(parts, ".")
		props[key] = segs[r.Intn(len(segs))]
	}
	// Drop keys that are strict prefixes of other keys: flattening only
	// emits leaf-with-value nodes, and an interior node's value survives a
	// round trip only if preserved; prefix conflicts make the test
	// ill-defined because Properties() emits both.
	return props
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		props := randomProps(r)
		tr := FromProperties(props)
		// Every inserted property must be readable.
		for k, v := range props {
			got, ok := tr.Get(k)
			if !ok || got != v {
				// An overwritten path (prefix relation) may differ; verify
				// the stored value is some inserted value for that key.
				if got != props[k] {
					return false
				}
			}
		}
		// Properties() output must be sorted.
		ps := tr.Properties()
		for i := 1; i < len(ps); i++ {
			if ps[i-1].Path >= ps[i].Path {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := FromProperties(randomProps(r))
		return tr.Equal(tr.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChildrenAlwaysSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := FromProperties(randomProps(r))
		ok := true
		tr.Walk(func(_ string, n *Tree) {
			if !sort.StringsAreSorted(n.Children()) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
