package nsga2

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// schaffer is the classic single-variable bi-objective test problem
// (f1 = x^2, f2 = (x-2)^2) with Pareto front x in [0,2].
func schaffer() Problem {
	return Problem{
		Vars:       []Variable{{Min: -10, Max: 10}},
		Objectives: 2,
		Evaluate: func(x []float64) []float64 {
			return []float64{x[0] * x[0], (x[0] - 2) * (x[0] - 2)}
		},
	}
}

func TestSchafferFront(t *testing.T) {
	front, err := Run(schaffer(), Config{PopSize: 60, Generations: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 10 {
		t.Fatalf("front too small: %d", len(front))
	}
	for _, ind := range front {
		if ind.X[0] < -0.25 || ind.X[0] > 2.25 {
			t.Errorf("front point x=%.3f far from true Pareto set [0,2]", ind.X[0])
		}
	}
}

func TestFrontMutuallyNonDominated(t *testing.T) {
	front, err := Run(schaffer(), Config{PopSize: 40, Generations: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range front {
		for j := range front {
			if i != j && Dominates(front[i], front[j]) {
				t.Fatalf("front member %d dominates member %d", i, j)
			}
		}
	}
}

func TestSingleObjectiveConvergence(t *testing.T) {
	// Sphere function: minimum at (3, -1).
	p := Problem{
		Vars:       []Variable{{Min: -10, Max: 10}, {Min: -10, Max: 10}},
		Objectives: 1,
		Evaluate: func(x []float64) []float64 {
			return []float64{(x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1)}
		},
	}
	front, err := Run(p, Config{PopSize: 40, Generations: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	best := front[0]
	if best.F[0] > 0.05 {
		t.Fatalf("did not converge: f=%.4f at %v", best.F[0], best.X)
	}
}

func TestIntegerVariables(t *testing.T) {
	// Minimise (n-7)^2 over integer n in [1,16].
	p := Problem{
		Vars:       []Variable{{Min: 1, Max: 16, Integer: true}},
		Objectives: 1,
		Evaluate: func(x []float64) []float64 {
			if x[0] != math.Round(x[0]) {
				t.Errorf("non-integer value passed to Evaluate: %v", x[0])
			}
			return []float64{(x[0] - 7) * (x[0] - 7)}
		},
	}
	front, err := Run(p, Config{PopSize: 20, Generations: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if front[0].X[0] != 7 {
		t.Fatalf("integer optimum not found: %v", front[0].X)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a, err := Run(schaffer(), Config{PopSize: 30, Generations: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(schaffer(), Config{PopSize: 30, Generations: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("different front sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].X[0] != b[i].X[0] {
			t.Fatal("non-deterministic result")
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Problem{}, Config{}); err == nil {
		t.Fatal("empty problem accepted")
	}
	if _, err := Run(Problem{Vars: []Variable{{0, 1, false}}, Objectives: 1}, Config{}); err == nil {
		t.Fatal("nil Evaluate accepted")
	}
	if _, err := Run(Problem{
		Vars: []Variable{{Min: 5, Max: 1}}, Objectives: 1,
		Evaluate: func(x []float64) []float64 { return []float64{0} },
	}, Config{}); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}

func TestDominates(t *testing.T) {
	a := Individual{F: []float64{1, 2}}
	b := Individual{F: []float64{2, 3}}
	c := Individual{F: []float64{1, 2}}
	d := Individual{F: []float64{0, 5}}
	if !Dominates(a, b) || Dominates(b, a) {
		t.Fatal("basic domination wrong")
	}
	if Dominates(a, c) || Dominates(c, a) {
		t.Fatal("equal points must not dominate")
	}
	if Dominates(a, d) || Dominates(d, a) {
		t.Fatal("incomparable points must not dominate")
	}
}

// Property: the NSGA-II front dominates (or matches) random search under
// the same evaluation budget on a bi-objective problem.
func TestQuickBeatsRandomSearch(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{PopSize: 24, Generations: 25, Seed: seed}
		front, err := Run(schaffer(), cfg)
		if err != nil || len(front) == 0 {
			return false
		}
		// Random search with identical budget.
		rng := rand.New(rand.NewSource(seed + 1))
		budget := cfg.PopSize * (cfg.Generations + 1)
		p := schaffer()
		var randPts []Individual
		for i := 0; i < budget; i++ {
			x := []float64{p.Vars[0].Min + rng.Float64()*(p.Vars[0].Max-p.Vars[0].Min)}
			randPts = append(randPts, Individual{X: x, F: p.Evaluate(x)})
		}
		// Compare hypervolume proxies: best f1+f2 sum.
		bestGA, bestRS := math.Inf(1), math.Inf(1)
		for _, ind := range front {
			bestGA = math.Min(bestGA, ind.F[0]+ind.F[1])
		}
		for _, ind := range randPts {
			bestRS = math.Min(bestRS, ind.F[0]+ind.F[1])
		}
		// The true minimum of f1+f2 is 2; GA must be close and not much
		// worse than random search.
		return bestGA < bestRS+0.5 && bestGA < 2.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
