// Package nsga2 implements the NSGA-II multi-objective genetic algorithm
// (Deb et al. 2002) that IReS's resource-provisioning module uses to pick
// Pareto-optimal resource configurations from the trained cost/performance
// models (D3.3 §2.2.4). The implementation covers fast non-dominated
// sorting, crowding distance, binary tournament selection under the crowded
// comparison operator, simulated binary crossover (SBX) and polynomial
// mutation, with elitist environmental selection.
package nsga2

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Variable bounds one decision variable. Integer variables are rounded on
// evaluation and in the returned individuals.
type Variable struct {
	Min, Max float64
	Integer  bool
}

// Problem is a minimisation problem over box-bounded variables.
type Problem struct {
	Vars []Variable
	// Objectives is the number of objectives Evaluate returns.
	Objectives int
	// Evaluate maps a decision vector to its objective values (all
	// minimised). It must be deterministic.
	Evaluate func(x []float64) []float64
}

// Config holds the GA hyper-parameters. Zero values select defaults.
type Config struct {
	PopSize       int     // default 40 (rounded up to even)
	Generations   int     // default 50
	CrossoverProb float64 // default 0.9
	MutationProb  float64 // default 1/len(vars)
	EtaCrossover  float64 // SBX distribution index, default 15
	EtaMutation   float64 // polynomial mutation index, default 20
	Seed          int64
}

func (c Config) withDefaults(nvars int) Config {
	if c.PopSize <= 0 {
		c.PopSize = 40
	}
	if c.PopSize%2 == 1 {
		c.PopSize++
	}
	if c.Generations <= 0 {
		c.Generations = 50
	}
	if c.CrossoverProb <= 0 {
		c.CrossoverProb = 0.9
	}
	if c.MutationProb <= 0 {
		c.MutationProb = 1.0 / float64(nvars)
	}
	if c.EtaCrossover <= 0 {
		c.EtaCrossover = 15
	}
	if c.EtaMutation <= 0 {
		c.EtaMutation = 20
	}
	return c
}

// Individual is one evaluated solution.
type Individual struct {
	X []float64 // decision variables (integers already rounded)
	F []float64 // objective values

	rank     int
	crowding float64
}

// Run executes NSGA-II and returns the final population's first
// non-dominated front, sorted by the first objective.
func Run(p Problem, cfg Config) ([]Individual, error) {
	if len(p.Vars) == 0 {
		return nil, fmt.Errorf("nsga2: no decision variables")
	}
	if p.Objectives < 1 {
		return nil, fmt.Errorf("nsga2: need at least one objective")
	}
	if p.Evaluate == nil {
		return nil, fmt.Errorf("nsga2: Evaluate is required")
	}
	for i, v := range p.Vars {
		if v.Max < v.Min {
			return nil, fmt.Errorf("nsga2: variable %d has Max < Min", i)
		}
	}
	cfg = cfg.withDefaults(len(p.Vars))
	rng := rand.New(rand.NewSource(cfg.Seed))

	pop := make([]Individual, cfg.PopSize)
	for i := range pop {
		x := make([]float64, len(p.Vars))
		for j, v := range p.Vars {
			x[j] = v.Min + rng.Float64()*(v.Max-v.Min)
		}
		pop[i] = evaluate(p, x)
	}
	rankAndCrowd(pop)

	for gen := 0; gen < cfg.Generations; gen++ {
		offspring := make([]Individual, 0, cfg.PopSize)
		for len(offspring) < cfg.PopSize {
			a := tournament(rng, pop)
			b := tournament(rng, pop)
			c1, c2 := crossover(rng, p, cfg, a.X, b.X)
			mutate(rng, p, cfg, c1)
			mutate(rng, p, cfg, c2)
			offspring = append(offspring, evaluate(p, c1), evaluate(p, c2))
		}
		pop = environmentalSelection(append(pop, offspring...), cfg.PopSize)
	}

	var front []Individual
	for _, ind := range pop {
		if ind.rank == 0 {
			front = append(front, ind)
		}
	}
	front = dedupFront(front)
	sort.Slice(front, func(i, j int) bool { return front[i].F[0] < front[j].F[0] })
	return front, nil
}

func evaluate(p Problem, x []float64) Individual {
	clamped := make([]float64, len(x))
	for j, v := range p.Vars {
		val := x[j]
		if val < v.Min {
			val = v.Min
		}
		if val > v.Max {
			val = v.Max
		}
		if v.Integer {
			val = math.Round(val)
			if val < v.Min {
				val = math.Ceil(v.Min)
			}
			if val > v.Max {
				val = math.Floor(v.Max)
			}
		}
		clamped[j] = val
	}
	return Individual{X: clamped, F: p.Evaluate(clamped)}
}

// Dominates reports whether a Pareto-dominates b (no worse in all
// objectives, strictly better in at least one).
func Dominates(a, b Individual) bool {
	better := false
	for i := range a.F {
		if a.F[i] > b.F[i] {
			return false
		}
		if a.F[i] < b.F[i] {
			better = true
		}
	}
	return better
}

// rankAndCrowd assigns non-domination ranks and crowding distances.
func rankAndCrowd(pop []Individual) {
	fronts := sortFronts(pop)
	for _, front := range fronts {
		assignCrowding(pop, front)
	}
}

// sortFronts performs fast non-dominated sorting, returning index fronts.
func sortFronts(pop []Individual) [][]int {
	n := len(pop)
	domCount := make([]int, n)
	dominated := make([][]int, n)
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if Dominates(pop[i], pop[j]) {
				dominated[i] = append(dominated[i], j)
			} else if Dominates(pop[j], pop[i]) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			pop[i].rank = 0
			first = append(first, i)
		}
	}
	fronts := [][]int{first}
	for len(fronts[len(fronts)-1]) > 0 {
		var next []int
		for _, i := range fronts[len(fronts)-1] {
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					pop[j].rank = len(fronts)
					next = append(next, j)
				}
			}
		}
		fronts = append(fronts, next)
	}
	return fronts[:len(fronts)-1]
}

func assignCrowding(pop []Individual, front []int) {
	if len(front) == 0 {
		return
	}
	for _, i := range front {
		pop[i].crowding = 0
	}
	nobj := len(pop[front[0]].F)
	for m := 0; m < nobj; m++ {
		sorted := append([]int(nil), front...)
		sort.Slice(sorted, func(a, b int) bool { return pop[sorted[a]].F[m] < pop[sorted[b]].F[m] })
		lo, hi := pop[sorted[0]].F[m], pop[sorted[len(sorted)-1]].F[m]
		pop[sorted[0]].crowding = math.Inf(1)
		pop[sorted[len(sorted)-1]].crowding = math.Inf(1)
		if hi == lo {
			continue
		}
		for k := 1; k < len(sorted)-1; k++ {
			pop[sorted[k]].crowding += (pop[sorted[k+1]].F[m] - pop[sorted[k-1]].F[m]) / (hi - lo)
		}
	}
}

// tournament picks the crowded-comparison winner of two random individuals.
func tournament(rng *rand.Rand, pop []Individual) Individual {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if crowdedLess(a, b) {
		return a
	}
	return b
}

func crowdedLess(a, b Individual) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.crowding > b.crowding
}

// crossover applies SBX with probability CrossoverProb, else copies.
func crossover(rng *rand.Rand, p Problem, cfg Config, a, b []float64) ([]float64, []float64) {
	c1 := append([]float64(nil), a...)
	c2 := append([]float64(nil), b...)
	if rng.Float64() > cfg.CrossoverProb {
		return c1, c2
	}
	for j, v := range p.Vars {
		if rng.Float64() > 0.5 || math.Abs(a[j]-b[j]) < 1e-14 {
			continue
		}
		x1, x2 := math.Min(a[j], b[j]), math.Max(a[j], b[j])
		u := rng.Float64()
		var beta float64
		if u <= 0.5 {
			beta = math.Pow(2*u, 1/(cfg.EtaCrossover+1))
		} else {
			beta = math.Pow(1/(2*(1-u)), 1/(cfg.EtaCrossover+1))
		}
		c1[j] = 0.5 * ((x1 + x2) - beta*(x2-x1))
		c2[j] = 0.5 * ((x1 + x2) + beta*(x2-x1))
		c1[j] = clamp(c1[j], v.Min, v.Max)
		c2[j] = clamp(c2[j], v.Min, v.Max)
	}
	return c1, c2
}

// mutate applies polynomial mutation in place.
func mutate(rng *rand.Rand, p Problem, cfg Config, x []float64) {
	for j, v := range p.Vars {
		if rng.Float64() > cfg.MutationProb {
			continue
		}
		span := v.Max - v.Min
		if span <= 0 {
			continue
		}
		u := rng.Float64()
		var delta float64
		if u < 0.5 {
			delta = math.Pow(2*u, 1/(cfg.EtaMutation+1)) - 1
		} else {
			delta = 1 - math.Pow(2*(1-u), 1/(cfg.EtaMutation+1))
		}
		x[j] = clamp(x[j]+delta*span, v.Min, v.Max)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// environmentalSelection keeps the best n individuals by rank, breaking the
// boundary front by crowding distance.
func environmentalSelection(pop []Individual, n int) []Individual {
	rankAndCrowd(pop)
	sort.SliceStable(pop, func(i, j int) bool { return crowdedLess(pop[i], pop[j]) })
	out := append([]Individual(nil), pop[:n]...)
	rankAndCrowd(out)
	return out
}

// dedupFront removes duplicate decision vectors (integer problems collapse
// many genotypes onto the same phenotype).
func dedupFront(front []Individual) []Individual {
	seen := make(map[string]bool)
	var out []Individual
	for _, ind := range front {
		key := fmt.Sprint(ind.X)
		if !seen[key] {
			seen[key] = true
			out = append(out, ind)
		}
	}
	return out
}
