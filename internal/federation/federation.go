// Package federation composes several independent clusters — each with its
// own scheduler, agents and reconciler — into one scheduling surface, the
// multi-cluster layer of the IReS vision: workflows are placed on the
// member whose region holds their input data and has capacity to spare, and
// a region-wide outage is recovered by replanning the affected runs on a
// surviving member.
//
// The layer is deliberately thin. It owns no resources: members keep full
// authority over admission and execution, and the federation only decides
// *which* member a workflow is submitted to (and re-submitted to after an
// outage). Durable checkpoints are mirrored across members through the
// cluster's checkpoint-mirror hook, so a cross-cluster replan restores
// banked units instead of recomputing them.
//
// All members must share one virtual clock: the federation composes
// schedulers on a single deterministic timeline.
package federation

import (
	"errors"
	"fmt"
	"sync"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/executor"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/scheduler"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/vtime"
	"github.com/asap-project/ires/internal/workflow"
)

// ErrUnknownMember names a member the federation does not hold.
var ErrUnknownMember = errors.New("federation: unknown member")

// ErrNoMembers rejects placement when every member is down.
var ErrNoMembers = errors.New("federation: no live member can host the run")

// Member is one federated cluster: a region with its own resource manager,
// scheduler and data.
type Member struct {
	Name      string
	Cluster   *cluster.Cluster
	Scheduler *scheduler.Scheduler
	// Datasets names the inputs resident in this region; placement counts
	// locality hits against it.
	Datasets map[string]bool
}

// Federation is the multi-cluster scheduling surface. Safe for concurrent
// use.
type Federation struct {
	clock  *vtime.Clock
	tracer trace.Tracer

	mu      sync.Mutex
	members []*Member
	byName  map[string]*Member
	down    map[string]bool
	runs    []*Run
	nextID  int
	replans int
}

// Run is the federation-level handle of a submitted workflow: it survives
// cross-cluster replans, always pointing at the current member run.
type Run struct {
	fed    *Federation
	id     string
	name   string
	g      *workflow.Graph
	opts   scheduler.SubmitOptions
	inputs []string

	mu     sync.Mutex
	member *Member
	run    *scheduler.Run
	moves  int
}

// New builds a federation over the given members. Every member must carry a
// distinct name and all must share the same virtual clock. Durable
// checkpoint mirroring between the members' clusters is installed here.
func New(clock *vtime.Clock, tracer trace.Tracer, members ...*Member) (*Federation, error) {
	if clock == nil {
		return nil, fmt.Errorf("federation: clock is required")
	}
	if len(members) < 2 {
		return nil, fmt.Errorf("federation: need at least 2 members, have %d", len(members))
	}
	if tracer == nil {
		tracer = trace.Nop()
	}
	f := &Federation{
		clock:   clock,
		tracer:  tracer,
		members: members,
		byName:  make(map[string]*Member, len(members)),
		down:    make(map[string]bool),
	}
	for _, m := range members {
		if m == nil || m.Cluster == nil || m.Scheduler == nil {
			return nil, fmt.Errorf("federation: member with nil cluster or scheduler")
		}
		if m.Cluster.Clock() != clock {
			return nil, fmt.Errorf("federation: member %s runs on a different clock", m.Name)
		}
		if _, dup := f.byName[m.Name]; dup {
			return nil, fmt.Errorf("federation: duplicate member name %s", m.Name)
		}
		f.byName[m.Name] = m
	}
	// Mirror durable checkpoints to every sibling. The hook fires only when
	// an entry actually advances and PutCheckpoint is monotonic, so mutual
	// mirroring terminates at a fixed point instead of looping. Non-durable
	// checkpoints live on region-local disks and are never mirrored.
	for _, m := range members {
		src := m
		src.Cluster.SetCheckpointMirror(func(key, algorithm string, units, total int, durable bool) {
			if !durable {
				return
			}
			for _, other := range members {
				if other != src {
					other.Cluster.PutCheckpoint(key, algorithm, units, total, nil, true)
				}
			}
		})
	}
	return f, nil
}

// Members returns the member list in federation order.
func (f *Federation) Members() []*Member {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Member(nil), f.members...)
}

// Replans returns the number of cross-cluster replans performed so far.
func (f *Federation) Replans() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.replans
}

// placeLocked scores the live members for a run reading the given inputs
// and returns the winner: most locality hits first, then most spare
// capacity (unreserved healthy nodes), then federation order. skip names a
// member to avoid (the region a replan is fleeing); f.mu held.
func (f *Federation) placeLocked(inputs []string, skip string) (*Member, int, int) {
	var best *Member
	bestLoc, bestSpare := -1, -1
	for _, m := range f.members {
		if f.down[m.Name] || m.Name == skip {
			continue
		}
		loc := 0
		for _, in := range inputs {
			if m.Datasets[in] {
				loc++
			}
		}
		spare := m.Cluster.UnreservedHealthy()
		if loc > bestLoc || (loc == bestLoc && spare > bestSpare) {
			best, bestLoc, bestSpare = m, loc, spare
		}
	}
	return best, bestLoc, bestSpare
}

// Submit places a workflow on the best member — by data locality over
// inputs, then spare capacity, then member order — and submits it there. It
// returns the federation-level run handle, which follows the run across any
// later cross-cluster replan.
func (f *Federation) Submit(g *workflow.Graph, opts scheduler.SubmitOptions, inputs ...string) (*Run, error) {
	f.mu.Lock()
	m, loc, spare := f.placeLocked(inputs, "")
	if m == nil {
		f.mu.Unlock()
		return nil, ErrNoMembers
	}
	f.nextID++
	fr := &Run{
		fed:    f,
		id:     fmt.Sprintf("fed-%03d", f.nextID),
		name:   opts.Name,
		g:      g,
		opts:   opts,
		inputs: inputs,
		member: m,
	}
	if fr.name == "" {
		fr.name = g.Target
	}
	f.runs = append(f.runs, fr)
	f.mu.Unlock()

	run := m.Scheduler.SubmitWith(g, opts)
	fr.mu.Lock()
	fr.run = run
	fr.mu.Unlock()
	f.tracer.Emit(trace.Event{
		Type: trace.EvFederationPlace, RunID: fr.id, Operator: fr.name, Node: m.Name,
		Fields: map[string]float64{"locality": float64(loc), "spare": float64(spare)},
	}.At(f.clock.Now()))
	return fr, nil
}

// FailRegion takes a whole member down: every node of its cluster crashes
// now, and every non-terminal federated run placed there is canceled and
// replanned onto a surviving member. Durable checkpoints were mirrored at
// write time, so replanned runs restore their banked units on arrival.
func (f *Federation) FailRegion(name string) error {
	f.mu.Lock()
	m, ok := f.byName[name]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownMember, name)
	}
	f.down[name] = true
	affected := make([]*Run, 0)
	for _, fr := range f.runs {
		fr.mu.Lock()
		if fr.member == m && fr.run != nil && !statusTerminal(fr.run) {
			affected = append(affected, fr)
		}
		fr.mu.Unlock()
	}
	f.mu.Unlock()

	nodes := m.Cluster.Nodes()
	now := f.clock.Now()
	for _, n := range nodes {
		_ = m.Cluster.FailNode(n.Name, now)
	}
	f.tracer.Emit(trace.Event{
		Type: trace.EvFederationOutage, Node: name,
		Fields: map[string]float64{"nodes": float64(len(nodes)), "affectedRuns": float64(len(affected))},
	}.At(now))

	for _, fr := range affected {
		if err := f.replan(fr, name); err != nil {
			return err
		}
	}
	return nil
}

// RestoreRegion brings a failed member back: its nodes are restored and it
// rejoins the placement pool. Runs moved away stay where they are.
func (f *Federation) RestoreRegion(name string) error {
	f.mu.Lock()
	m, ok := f.byName[name]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownMember, name)
	}
	delete(f.down, name)
	f.mu.Unlock()
	for _, n := range m.Cluster.Nodes() {
		if !n.Healthy() {
			if err := m.Cluster.RestoreNode(n.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// replan moves one run off a dead region: pick the best surviving member,
// swap the handle over, then cancel the stranded member run (in that order,
// so a Wait on the handle follows the move instead of observing a terminal
// cancellation).
func (f *Federation) replan(fr *Run, from string) error {
	f.mu.Lock()
	m, loc, spare := f.placeLocked(fr.inputs, from)
	if m == nil {
		f.mu.Unlock()
		return ErrNoMembers
	}
	f.replans++
	f.mu.Unlock()

	newRun := m.Scheduler.SubmitWith(fr.g, fr.opts)
	fr.mu.Lock()
	old := fr.run
	fr.member = m
	fr.run = newRun
	fr.moves++
	fr.mu.Unlock()
	if old != nil {
		old.Cancel()
	}
	now := f.clock.Now()
	f.tracer.Emit(trace.Event{
		Type: trace.EvFederationReplan, RunID: fr.id, Operator: fr.name, Node: m.Name,
		Fields: map[string]float64{"fromDown": 1},
	}.At(now))
	f.tracer.Emit(trace.Event{
		Type: trace.EvFederationPlace, RunID: fr.id, Operator: fr.name, Node: m.Name,
		Fields: map[string]float64{"locality": float64(loc), "spare": float64(spare)},
	}.At(now))
	return nil
}

func statusTerminal(r *scheduler.Run) bool {
	select {
	case <-r.Done():
		return true
	default:
		return false
	}
}

// ID returns the federation-level run id (stamped on federation.* events).
func (r *Run) ID() string { return r.id }

// Member returns the member currently hosting the run.
func (r *Run) Member() *Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.member
}

// Moves returns how many times the run has been replanned across clusters.
func (r *Run) Moves() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.moves
}

// Current returns the member run currently backing the handle.
func (r *Run) Current() *scheduler.Run {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.run
}

// Wait blocks until the run reaches a terminal state on whichever member
// finally hosts it, following cross-cluster replans transparently.
func (r *Run) Wait() (*planner.Plan, *executor.Result, error) {
	for {
		r.mu.Lock()
		run := r.run
		r.mu.Unlock()
		plan, res, err := run.Wait()
		r.mu.Lock()
		moved := r.run != run
		r.mu.Unlock()
		if moved {
			continue
		}
		return plan, res, err
	}
}

// Status returns the snapshot of the current member run.
func (r *Run) Status() scheduler.Snapshot {
	r.mu.Lock()
	run := r.run
	r.mu.Unlock()
	return run.Status()
}

// WaitIdle advances the shared clock until every member scheduler has
// drained its queue (test/bench helper).
func (f *Federation) WaitIdle() {
	for _, m := range f.Members() {
		m.Scheduler.Drain()
	}
}
