package federation

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/executor"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/scheduler"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/vtime"
	"github.com/asap-project/ires/internal/workflow"
)

// unitRecord tracks, per checkpoint key, every executed work unit and where
// it ran — the evidence that a cross-cluster replan restores banked units
// instead of recomputing them.
type unitRecord struct {
	mu    sync.Mutex
	units map[string][]string // key -> "member/unit" in execution order
}

func newUnitRecord() *unitRecord {
	return &unitRecord{units: make(map[string][]string)}
}

func (ur *unitRecord) record(key, member string, unit int) {
	ur.mu.Lock()
	defer ur.mu.Unlock()
	ur.units[key] = append(ur.units[key], fmt.Sprintf("%s/%d", member, unit))
}

// duplicates returns units executed more than once for the key, regardless
// of member.
func (ur *unitRecord) duplicates(key string) []int {
	ur.mu.Lock()
	defer ur.mu.Unlock()
	seen := make(map[int]int)
	var dup []int
	for _, s := range ur.units[key] {
		var member string
		var unit int
		fmt.Sscanf(s, "%s", &member)
		if _, err := fmt.Sscanf(s[len(s)-2:], "/%d", &unit); err != nil {
			// unit >= 10: reparse from the slash
			for i := len(s) - 1; i >= 0; i-- {
				if s[i] == '/' {
					fmt.Sscanf(s[i:], "/%d", &unit)
					break
				}
			}
		}
		seen[unit]++
		if seen[unit] == 2 {
			dup = append(dup, unit)
		}
	}
	return dup
}

func (ur *unitRecord) count(key string) int {
	ur.mu.Lock()
	defer ur.mu.Unlock()
	return len(ur.units[key])
}

// ckptExec is a checkpointing unit-stepping stub: units sequential work
// units of unitDur each, banking a durable checkpoint after every unit and
// seeding from the banked progress at start — so a replanned run on a
// cluster holding mirrored checkpoints resumes instead of recomputing.
type ckptExec struct {
	clock   *vtime.Clock
	clu     *cluster.Cluster
	member  string
	ctx     scheduler.ExecContext
	units   int
	unitDur time.Duration
	rec     *unitRecord
}

func (e *ckptExec) Execute(g *workflow.Graph, plan *planner.Plan) (*executor.Result, error) {
	key := "fed/" + g.Target
	begin := e.clock.Now()
	start := e.clu.CheckpointProgress(key, "alg", e.units)
	for i := start; i < e.units; i++ {
		if e.ctx.Canceled() {
			return nil, executor.ErrCanceled
		}
		if e.ctx.Suspend() {
			return &executor.Result{Makespan: e.clock.Now() - begin}, executor.ErrSuspended
		}
		e.ctx.Party.WaitUntil(e.clock.Now() + e.unitDur)
		// A cancellation that landed mid-unit discards the partial unit: the
		// stranded side of a replan must not race the takeover side.
		if e.ctx.Canceled() {
			return nil, executor.ErrCanceled
		}
		e.rec.record(key, e.member, i)
		e.clu.PutCheckpoint(key, "alg", i+1, e.units, nil, true)
	}
	return &executor.Result{Makespan: e.clock.Now() - begin}, nil
}

func (e *ckptExec) Resume(g *workflow.Graph, done []planner.MaterializedIntermediate) (*executor.Result, error) {
	return e.Execute(g, nil)
}

// newMember wires one federated region: its own cluster and scheduler on
// the shared clock, running ckptExec stubs.
func newMember(t *testing.T, clock *vtime.Clock, name string, nodes, units int, unitDur time.Duration, rec *unitRecord, datasets ...string) *Member {
	t.Helper()
	clu := cluster.New(clock, nodes, 8, 16384)
	sched, err := scheduler.New(scheduler.Config{
		Clock:   clock,
		Cluster: clu,
		Policy:  scheduler.FIFO{},
		Plan: func(g *workflow.Graph) (*planner.Plan, error) {
			return &planner.Plan{Target: g.Target}, nil
		},
		NewExecutor: func(ctx scheduler.ExecContext) scheduler.Exec {
			return &ckptExec{clock: clock, clu: clu, member: name, ctx: ctx, units: units, unitDur: unitDur, rec: rec}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := make(map[string]bool, len(datasets))
	for _, d := range datasets {
		ds[d] = true
	}
	return &Member{Name: name, Cluster: clu, Scheduler: sched, Datasets: ds}
}

func fedGraph(name string) *workflow.Graph {
	g := workflow.NewGraph()
	g.Target = name
	return g
}

type fedTracer struct {
	mu  sync.Mutex
	evs []trace.Event
}

func (ft *fedTracer) Emit(ev trace.Event) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.evs = append(ft.evs, ev)
}

func (ft *fedTracer) ofType(typ trace.EventType) []trace.Event {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	var out []trace.Event
	for _, ev := range ft.evs {
		if ev.Type == typ {
			out = append(out, ev)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	clock := vtime.NewClock()
	rec := newUnitRecord()
	east := newMember(t, clock, "east", 2, 2, time.Second, rec)
	if _, err := New(clock, nil, east); err == nil {
		t.Fatal("single-member federation accepted")
	}
	other := newMember(t, vtime.NewClock(), "west", 2, 2, time.Second, rec)
	if _, err := New(clock, nil, east, other); err == nil {
		t.Fatal("mismatched clocks accepted")
	}
	dup := newMember(t, clock, "east", 2, 2, time.Second, rec)
	if _, err := New(clock, nil, east, dup); err == nil {
		t.Fatal("duplicate member names accepted")
	}
}

// Placement prefers data locality over spare capacity, spare capacity as
// the tiebreak, and member order last.
func TestPlacementLocalityAndSpare(t *testing.T) {
	clock := vtime.NewClock()
	rec := newUnitRecord()
	ft := &fedTracer{}
	east := newMember(t, clock, "east", 4, 1, time.Second, rec, "ds-east")
	west := newMember(t, clock, "west", 2, 1, time.Second, rec, "ds-west")
	f, err := New(clock, ft, east, west)
	if err != nil {
		t.Fatal(err)
	}

	// Locality beats the bigger free pool on east.
	fr, err := f.Submit(fedGraph("wf-local"), scheduler.SubmitOptions{}, "ds-west")
	if err != nil {
		t.Fatal(err)
	}
	if fr.Member().Name != "west" {
		t.Fatalf("placed on %s, want west", fr.Member().Name)
	}
	// No locality anywhere: spare capacity decides.
	fr2, err := f.Submit(fedGraph("wf-free"), scheduler.SubmitOptions{}, "ds-elsewhere")
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Member().Name != "east" {
		t.Fatalf("placed on %s, want east", fr2.Member().Name)
	}
	if _, _, err := fr.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fr2.Wait(); err != nil {
		t.Fatal(err)
	}
	places := ft.ofType(trace.EvFederationPlace)
	if len(places) != 2 || places[0].Node != "west" || places[1].Node != "east" {
		t.Fatalf("federation.place events = %+v", places)
	}
}

// A region outage mid-run is recovered by a cross-cluster replan: the run
// completes on the surviving member, restoring the durable checkpoints that
// were mirrored at write time — zero work units are recomputed.
func TestRegionOutageCrossClusterReplan(t *testing.T) {
	clock := vtime.NewClock()
	rec := newUnitRecord()
	ft := &fedTracer{}
	const units = 6
	east := newMember(t, clock, "east", 2, units, 10*time.Second, rec, "ds-east")
	west := newMember(t, clock, "west", 2, units, 10*time.Second, rec, "ds-west")
	f, err := New(clock, ft, east, west)
	if err != nil {
		t.Fatal(err)
	}

	fr, err := f.Submit(fedGraph("wf-outage"), scheduler.SubmitOptions{}, "ds-east")
	if err != nil {
		t.Fatal(err)
	}
	if fr.Member().Name != "east" {
		t.Fatalf("placed on %s, want east", fr.Member().Name)
	}
	clock.Schedule(25*time.Second, func(time.Duration) {
		if err := f.FailRegion("east"); err != nil {
			t.Error(err)
		}
	})

	if _, _, err := fr.Wait(); err != nil {
		t.Fatalf("replanned run failed: %v", err)
	}
	if fr.Member().Name != "west" {
		t.Fatalf("finished on %s, want west", fr.Member().Name)
	}
	if fr.Moves() != 1 || f.Replans() != 1 {
		t.Fatalf("moves=%d replans=%d, want 1/1", fr.Moves(), f.Replans())
	}

	key := "fed/wf-outage"
	if dup := rec.duplicates(key); len(dup) != 0 {
		t.Fatalf("units re-executed after replan: %v (all: %v)", dup, rec.units[key])
	}
	if got := rec.count(key); got != units {
		t.Fatalf("executed %d units total, want exactly %d: %v", got, units, rec.units[key])
	}
	if len(ft.ofType(trace.EvFederationOutage)) != 1 {
		t.Fatal("missing federation.outage event")
	}
	if len(ft.ofType(trace.EvFederationReplan)) != 1 {
		t.Fatal("missing federation.replan event")
	}

	// The dead region recovers and rejoins placement.
	if err := f.RestoreRegion("east"); err != nil {
		t.Fatal(err)
	}
	fr2, err := f.Submit(fedGraph("wf-after"), scheduler.SubmitOptions{}, "ds-east")
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Member().Name != "east" {
		t.Fatalf("post-restore placement on %s, want east", fr2.Member().Name)
	}
	if _, _, err := fr2.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestFailUnknownRegion(t *testing.T) {
	clock := vtime.NewClock()
	rec := newUnitRecord()
	east := newMember(t, clock, "east", 2, 1, time.Second, rec)
	west := newMember(t, clock, "west", 2, 1, time.Second, rec)
	f, err := New(clock, nil, east, west)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FailRegion("north"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("err = %v, want ErrUnknownMember", err)
	}
	if err := f.RestoreRegion("north"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("err = %v, want ErrUnknownMember", err)
	}
}

// Run-handle accessors and the terminal/all-down edge cases.
func TestRunHandleAndAllRegionsDown(t *testing.T) {
	clock := vtime.NewClock()
	rec := newUnitRecord()
	east := newMember(t, clock, "east", 2, 1, time.Second, rec)
	west := newMember(t, clock, "west", 2, 1, time.Second, rec)
	f, err := New(clock, nil, east, west)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Members()); got != 2 {
		t.Fatalf("Members() = %d, want 2", got)
	}

	fr, err := f.Submit(fedGraph("wf-handle"), scheduler.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fr.ID() != "fed-001" {
		t.Fatalf("ID() = %q, want fed-001", fr.ID())
	}
	if fr.Current() == nil {
		t.Fatal("Current() returned nil member run")
	}
	if _, _, err := fr.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := fr.Status(); st.Status != "succeeded" {
		t.Fatalf("Status() = %+v, want succeeded", st)
	}
	f.WaitIdle()

	// A terminal run is not replanned when its region fails.
	if err := f.FailRegion(fr.Member().Name); err != nil {
		t.Fatal(err)
	}
	if fr.Moves() != 0 || f.Replans() != 0 {
		t.Fatalf("terminal run was replanned: moves=%d replans=%d", fr.Moves(), f.Replans())
	}
	// With both regions down, placement has nowhere to go.
	other := "east"
	if fr.Member().Name == "east" {
		other = "west"
	}
	if err := f.FailRegion(other); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(fedGraph("wf-nowhere"), scheduler.SubmitOptions{}); !errors.Is(err, ErrNoMembers) {
		t.Fatalf("submit with all regions down: err = %v, want ErrNoMembers", err)
	}
}
