// Package agent implements the per-node actor of the cluster layer: each
// simulated machine owns its local truth — hosted containers, resource
// usage, health, and the checkpoint replicas on its local disk — behind a
// small message API (Offer/Place/Kill/Report). The cluster's reconciler
// holds the *desired* state (reservations, leases, demanded containers) and
// drives agents toward it; the agent never calls back up, so the lock order
// is always control-plane lock → agent lock.
//
// Agents are synchronous deterministic actors, not goroutines: every
// message is a method call under the agent's own mutex, and all mutation is
// driven by the control plane on the shared virtual clock, so fixed-seed
// scenarios stay byte-identical. The one asynchronous behaviour an agent
// models is *observability*, not execution: a partitioned agent keeps
// mutating its local truth but serves the report snapshot frozen at
// partition time, which is exactly the stale-report drift a reconciler must
// tolerate.
package agent

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrAgentDown rejects a placement on a dead (failed, not yet restored)
// agent. The control plane treats the node as unusable and picks another.
var ErrAgentDown = errors.New("agent: node down")

// ErrOverCommitted rejects a placement that would exceed the node's core
// capacity. Cores are never oversubscribed; memory admission is the control
// plane's job (overcommit is a policy, and the OOM model lives above the
// agent), so the agent only tracks memory usage.
var ErrOverCommitted = errors.New("agent: placement exceeds core capacity")

// ErrDuplicateContainer rejects a placement whose container id the agent
// already hosts.
var ErrDuplicateContainer = errors.New("agent: duplicate container id")

// Placement is one container installed on an agent: the agent-side record
// of a granted lease. ResID names the control-plane reservation it was
// allocated under (0 = unreserved pool) and is opaque to the agent.
type Placement struct {
	ID    int
	Cores int
	MemMB int
	ResID int
}

// Offer is the agent's answer to "what could you host right now": spare
// capacity and health, read from live local truth (offers are a control
// channel, not a gossiped report, so they never go stale).
type Offer struct {
	Node      string
	Healthy   bool
	FreeCores int
	FreeMemMB int
}

// Report is the agent's published view of its local truth — what a
// heartbeat would carry. While the agent is partitioned, Report returns the
// snapshot frozen at partition time with Stale set; the reconciler must
// tolerate (not act on) stale reports and reconverge after the heal.
type Report struct {
	Node string
	// Incarnation counts agent rebirths: it bumps on Restore, so a
	// reconciler can tell "the node I knew" from "a fresh daemon that lost
	// everything" even when both report healthy.
	Incarnation int
	// Seq bumps on every local mutation; a reconciler uses it to detect
	// news without diffing full reports.
	Seq        int64
	Healthy    bool
	UsedCores  int
	UsedMemMB  int
	Containers []int // hosted container ids, sorted
	// Replicas lists the checkpoint keys replicated on this node's local
	// disk, sorted.
	Replicas []string
	Stale    bool
}

// Agent is one node actor. It is safe for concurrent use; all methods are
// synchronous and deterministic.
type Agent struct {
	name  string
	cores int
	memMB int

	mu          sync.Mutex
	healthy     bool
	incarnation int
	seq         int64
	usedCores   int
	usedMemMB   int
	placements  map[int]Placement
	replicas    map[string]bool

	partitioned bool
	frozen      Report
}

// New builds a healthy agent for a node of the given capacity.
func New(name string, cores, memMB int) *Agent {
	return &Agent{
		name:       name,
		cores:      cores,
		memMB:      memMB,
		healthy:    true,
		placements: make(map[int]Placement),
		replicas:   make(map[string]bool),
	}
}

// Name returns the node name the agent manages.
func (a *Agent) Name() string { return a.name }

// Cores returns the node's core capacity.
func (a *Agent) Cores() int { return a.cores }

// MemMB returns the node's physical memory capacity.
func (a *Agent) MemMB() int { return a.memMB }

// Offer reports the node's spare capacity from live local truth.
func (a *Agent) Offer() Offer {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Offer{
		Node:      a.name,
		Healthy:   a.healthy,
		FreeCores: a.cores - a.usedCores,
		FreeMemMB: a.memMB - a.usedMemMB,
	}
}

// Place installs a container on the node. It fails on a dead agent, on a
// duplicate id, and when the placement would exceed core capacity; memory
// may exceed physical capacity (the control plane models overcommit and the
// OOM killer above the agent).
func (a *Agent) Place(p Placement) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.healthy {
		return fmt.Errorf("%w: %s", ErrAgentDown, a.name)
	}
	if _, ok := a.placements[p.ID]; ok {
		return fmt.Errorf("%w: %d on %s", ErrDuplicateContainer, p.ID, a.name)
	}
	if a.usedCores+p.Cores > a.cores {
		return fmt.Errorf("%w: %d+%d of %d cores on %s", ErrOverCommitted, a.usedCores, p.Cores, a.cores, a.name)
	}
	a.placements[p.ID] = p
	a.usedCores += p.Cores
	a.usedMemMB += p.MemMB
	a.seq++
	return nil
}

// Kill removes a container from the node, returning its placement record.
// Killing an unknown id is a safe no-op (the container may have died with a
// previous incarnation).
func (a *Agent) Kill(id int) (Placement, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.placements[id]
	if !ok {
		return Placement{}, false
	}
	delete(a.placements, id)
	a.usedCores -= p.Cores
	a.usedMemMB -= p.MemMB
	a.seq++
	return p, true
}

// Hosts reports whether the agent currently hosts the container.
func (a *Agent) Hosts(id int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.placements[id]
	return ok
}

// Placements returns the hosted placements sorted by container id.
func (a *Agent) Placements() []Placement {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.placementsLocked()
}

func (a *Agent) placementsLocked() []Placement {
	out := make([]Placement, 0, len(a.placements))
	for _, p := range a.placements {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddReplica records a checkpoint replica on the node's local disk.
func (a *Agent) AddReplica(key string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.replicas[key] {
		a.replicas[key] = true
		a.seq++
	}
}

// DropReplica removes a checkpoint replica (the entry was cleared or
// superseded). Unknown keys are a safe no-op.
func (a *Agent) DropReplica(key string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.replicas[key] {
		delete(a.replicas, key)
		a.seq++
	}
}

// HasReplica reports whether the node's local disk actually holds a replica
// of the checkpoint (live truth, even behind a partition).
func (a *Agent) HasReplica(key string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.replicas[key]
}

// Replicas returns the checkpoint keys on the node's local disk, sorted
// (live truth, even behind a partition).
func (a *Agent) Replicas() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make([]string, 0, len(a.replicas))
	for k := range a.replicas {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Report publishes the agent's local truth. While partitioned it returns
// the snapshot frozen at partition time with Stale set.
func (a *Agent) Report() Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.partitioned {
		return a.frozen
	}
	return a.reportLocked()
}

func (a *Agent) reportLocked() Report {
	ids := make([]int, 0, len(a.placements))
	for id := range a.placements {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	keys := make([]string, 0, len(a.replicas))
	for k := range a.replicas {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return Report{
		Node:        a.name,
		Incarnation: a.incarnation,
		Seq:         a.seq,
		Healthy:     a.healthy,
		UsedCores:   a.usedCores,
		UsedMemMB:   a.usedMemMB,
		Containers:  ids,
		Replicas:    keys,
	}
}

// Healthy reports the agent's live health truth (not the possibly-stale
// published report).
func (a *Agent) Healthy() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.healthy
}

// SetHealthy flips the agent's health flag without dropping state: the
// node-manager daemon marking itself UNHEALTHY after a failed probe, not a
// crash. Containers keep running (YARN semantics: an unhealthy node
// finishes its work but takes no new containers).
func (a *Agent) SetHealthy(healthy bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.healthy != healthy {
		a.healthy = healthy
		a.seq++
	}
}

// Fail is agent death: the machine is gone, every hosted container and
// local checkpoint replica with it. It returns the dropped placements
// (sorted by id) and replica keys (sorted) so the control plane can
// invalidate the matching desired state. Failing a dead agent is a no-op.
func (a *Agent) Fail() (dropped []Placement, lostReplicas []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.healthy && len(a.placements) == 0 && len(a.replicas) == 0 {
		return nil, nil
	}
	dropped = a.placementsLocked()
	for k := range a.replicas {
		lostReplicas = append(lostReplicas, k)
	}
	sort.Strings(lostReplicas)
	a.placements = make(map[int]Placement)
	a.replicas = make(map[string]bool)
	a.usedCores, a.usedMemMB = 0, 0
	a.healthy = false
	a.seq++
	return dropped, lostReplicas
}

// Restore is agent rebirth after a crash: a fresh daemon on repaired
// hardware, healthy, hosting nothing, with a bumped incarnation.
func (a *Agent) Restore() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.healthy = true
	a.incarnation++
	a.seq++
}

// Incarnation returns the agent's current incarnation number.
func (a *Agent) Incarnation() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.incarnation
}

// Partition freezes the agent's published report at its current truth:
// heartbeats stop flowing, so observers keep seeing the last pre-partition
// snapshot (Stale=true) while the agent's actual state keeps moving.
// Partitioning twice keeps the original snapshot.
func (a *Agent) Partition() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.partitioned {
		return
	}
	a.frozen = a.reportLocked()
	a.frozen.Stale = true
	a.partitioned = true
}

// Heal ends a partition: reports flow fresh again.
func (a *Agent) Heal() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.partitioned = false
	a.frozen = Report{}
}

// Partitioned reports whether the agent's reports are currently frozen.
func (a *Agent) Partitioned() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.partitioned
}
