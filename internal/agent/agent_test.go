package agent

import (
	"errors"
	"reflect"
	"testing"
)

func TestPlaceKillAccounting(t *testing.T) {
	a := New("node0", 8, 16384)
	if err := a.Place(Placement{ID: 1, Cores: 2, MemMB: 4096, ResID: 7}); err != nil {
		t.Fatal(err)
	}
	if err := a.Place(Placement{ID: 2, Cores: 4, MemMB: 8192}); err != nil {
		t.Fatal(err)
	}
	off := a.Offer()
	if off.FreeCores != 2 || off.FreeMemMB != 4096 || !off.Healthy {
		t.Fatalf("offer = %+v", off)
	}
	if !a.Hosts(1) || a.Hosts(3) {
		t.Fatal("Hosts wrong")
	}
	p, ok := a.Kill(1)
	if !ok || p.Cores != 2 || p.ResID != 7 {
		t.Fatalf("kill = %+v, %v", p, ok)
	}
	if _, ok := a.Kill(1); ok {
		t.Fatal("double kill reported a placement")
	}
	rep := a.Report()
	if rep.UsedCores != 4 || rep.UsedMemMB != 8192 || !reflect.DeepEqual(rep.Containers, []int{2}) {
		t.Fatalf("report = %+v", rep)
	}
}

func TestPlaceRejections(t *testing.T) {
	a := New("node0", 4, 1024)
	if err := a.Place(Placement{ID: 1, Cores: 3, MemMB: 512}); err != nil {
		t.Fatal(err)
	}
	if err := a.Place(Placement{ID: 1, Cores: 1, MemMB: 1}); !errors.Is(err, ErrDuplicateContainer) {
		t.Fatalf("duplicate id error = %v", err)
	}
	if err := a.Place(Placement{ID: 2, Cores: 2, MemMB: 1}); !errors.Is(err, ErrOverCommitted) {
		t.Fatalf("core overflow error = %v", err)
	}
	// Memory may exceed physical capacity (overcommit is control-plane policy).
	if err := a.Place(Placement{ID: 3, Cores: 1, MemMB: 4096}); err != nil {
		t.Fatalf("memory overcommit rejected: %v", err)
	}
	a.Fail()
	if err := a.Place(Placement{ID: 4, Cores: 1, MemMB: 1}); !errors.Is(err, ErrAgentDown) {
		t.Fatalf("dead-agent error = %v", err)
	}
}

func TestFailDropsEverythingAndRestoreBumpsIncarnation(t *testing.T) {
	a := New("node0", 8, 16384)
	for id := 1; id <= 3; id++ {
		if err := a.Place(Placement{ID: id, Cores: 1, MemMB: 1024}); err != nil {
			t.Fatal(err)
		}
	}
	a.AddReplica("ckpt/b")
	a.AddReplica("ckpt/a")
	dropped, lost := a.Fail()
	if len(dropped) != 3 || dropped[0].ID != 1 || dropped[2].ID != 3 {
		t.Fatalf("dropped = %+v", dropped)
	}
	if !reflect.DeepEqual(lost, []string{"ckpt/a", "ckpt/b"}) {
		t.Fatalf("lost replicas = %v", lost)
	}
	if a.Healthy() {
		t.Fatal("failed agent reports healthy")
	}
	rep := a.Report()
	if rep.UsedCores != 0 || rep.UsedMemMB != 0 || len(rep.Containers) != 0 || len(rep.Replicas) != 0 {
		t.Fatalf("post-fail report = %+v", rep)
	}
	if d2, l2 := a.Fail(); d2 != nil || l2 != nil {
		t.Fatal("double fail dropped state")
	}
	inc := a.Incarnation()
	a.Restore()
	if !a.Healthy() || a.Incarnation() != inc+1 {
		t.Fatalf("restore: healthy=%v incarnation=%d", a.Healthy(), a.Incarnation())
	}
}

func TestPartitionFreezesReports(t *testing.T) {
	a := New("node0", 8, 16384)
	if err := a.Place(Placement{ID: 1, Cores: 2, MemMB: 2048}); err != nil {
		t.Fatal(err)
	}
	a.Partition()
	if !a.Partitioned() {
		t.Fatal("not partitioned")
	}
	// Local truth keeps moving; the published report does not.
	if err := a.Place(Placement{ID: 2, Cores: 2, MemMB: 2048}); err != nil {
		t.Fatal(err)
	}
	rep := a.Report()
	if !rep.Stale || rep.UsedCores != 2 || !reflect.DeepEqual(rep.Containers, []int{1}) {
		t.Fatalf("frozen report = %+v", rep)
	}
	// Even death stays invisible behind the partition.
	a.Fail()
	if rep := a.Report(); !rep.Stale || !rep.Healthy {
		t.Fatalf("report leaked death through partition: %+v", rep)
	}
	a.Heal()
	rep = a.Report()
	if rep.Stale || rep.Healthy || rep.UsedCores != 0 {
		t.Fatalf("healed report = %+v", rep)
	}
}

func TestReplicaBookkeeping(t *testing.T) {
	a := New("node0", 8, 16384)
	seq0 := a.Report().Seq
	a.AddReplica("k1")
	a.AddReplica("k1") // idempotent
	if got := a.Report(); got.Seq != seq0+1 || !reflect.DeepEqual(got.Replicas, []string{"k1"}) {
		t.Fatalf("report after add = %+v", got)
	}
	a.DropReplica("k1")
	a.DropReplica("missing") // no-op
	if got := a.Report(); len(got.Replicas) != 0 {
		t.Fatalf("report after drop = %+v", got)
	}
}

func TestSetHealthyKeepsState(t *testing.T) {
	a := New("node0", 8, 16384)
	if err := a.Place(Placement{ID: 1, Cores: 1, MemMB: 1}); err != nil {
		t.Fatal(err)
	}
	a.SetHealthy(false)
	if rep := a.Report(); rep.Healthy || rep.UsedCores != 1 {
		t.Fatalf("unhealthy flip dropped state: %+v", rep)
	}
	a.SetHealthy(true)
	if !a.Healthy() {
		t.Fatal("not healthy after flip back")
	}
}
