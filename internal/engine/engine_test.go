package engine

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func env(t *testing.T) *Environment {
	t.Helper()
	return NewDefaultEnvironment(42)
}

func pagerankInput(edges int64) Input {
	return Input{Records: edges, Bytes: edges * 40, Params: map[string]float64{"iterations": 10}}
}

func gt(t *testing.T, e *Environment, eng string, in Input, res Resources) float64 {
	t.Helper()
	sec, err := e.GroundTruthSec(eng, AlgPagerank, in, res)
	if err != nil {
		t.Fatalf("%s: %v", eng, err)
	}
	return sec
}

// TestFig11Regimes locks in the qualitative shape of Figure 11: Java wins
// small graphs, Hama wins medium, Spark wins large; Java and Hama OOM at
// their respective memory walls.
func TestFig11Regimes(t *testing.T) {
	e := env(t)

	// Small graph (10k edges): Java fastest.
	small := pagerankInput(10_000)
	java := gt(t, e, EngineJava, small, SingleNode)
	spark := gt(t, e, EngineSpark, small, StandardCluster)
	hama := gt(t, e, EngineHama, small, StandardCluster)
	if !(java < hama && java < spark) {
		t.Errorf("small graph: java=%.1f hama=%.1f spark=%.1f; want java fastest", java, hama, spark)
	}

	// Medium graph (10M edges): Hama fastest.
	medium := pagerankInput(10_000_000)
	java = gt(t, e, EngineJava, medium, SingleNode)
	spark = gt(t, e, EngineSpark, medium, StandardCluster)
	hama = gt(t, e, EngineHama, medium, StandardCluster)
	if !(hama < java && hama < spark) {
		t.Errorf("medium graph: java=%.1f hama=%.1f spark=%.1f; want hama fastest", java, hama, spark)
	}

	// Large graph (100M edges): Java and Hama OOM, Spark survives.
	large := pagerankInput(100_000_000)
	if _, err := e.GroundTruthSec(EngineJava, AlgPagerank, large, SingleNode); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("java on 100M edges: err=%v, want OOM", err)
	}
	if _, err := e.GroundTruthSec(EngineHama, AlgPagerank, large, StandardCluster); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("hama on 100M edges: err=%v, want OOM", err)
	}
	if _, err := e.GroundTruthSec(EngineSpark, AlgPagerank, large, StandardCluster); err != nil {
		t.Errorf("spark on 100M edges: %v", err)
	}
}

// TestFig12Regimes locks in the Figure 12 shape: scikit beats Spark below
// ~10k documents, Spark wins above.
func TestFig12Regimes(t *testing.T) {
	e := env(t)
	in := func(docs int64) Input { return Input{Records: docs, Bytes: docs * 5_000} }

	sciSmall, err := e.GroundTruthSec(EngineScikit, AlgTFIDF, in(2_000), SingleNode)
	if err != nil {
		t.Fatal(err)
	}
	sparkSmall, err := e.GroundTruthSec(EngineSpark, AlgTFIDF, in(2_000), StandardCluster)
	if err != nil {
		t.Fatal(err)
	}
	if sciSmall >= sparkSmall {
		t.Errorf("2k docs: scikit=%.1f spark=%.1f; want scikit faster", sciSmall, sparkSmall)
	}

	sciBig, err := e.GroundTruthSec(EngineScikit, AlgTFIDF, in(100_000), SingleNode)
	if err != nil {
		t.Fatal(err)
	}
	sparkBig, err := e.GroundTruthSec(EngineSpark, AlgTFIDF, in(100_000), StandardCluster)
	if err != nil {
		t.Fatal(err)
	}
	if sparkBig >= sciBig {
		t.Errorf("100k docs: scikit=%.1f spark=%.1f; want spark faster", sciBig, sparkBig)
	}
}

// TestMemSQLOOM locks in the Figure 13 behaviour: MemSQL fails once the
// joined working set exceeds aggregate cluster memory (~2GB of input).
func TestMemSQLOOM(t *testing.T) {
	e := env(t)
	rows := func(gb float64) Input {
		return Input{Records: int64(gb * 6e6), Bytes: int64(gb * 1e9)}
	}
	if _, err := e.GroundTruthSec(EngineMemSQL, AlgSQLQ3, rows(1), StandardCluster); err != nil {
		t.Errorf("MemSQL at 1GB should run: %v", err)
	}
	if _, err := e.GroundTruthSec(EngineMemSQL, AlgSQLQ3, rows(5), StandardCluster); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("MemSQL at 5GB: err=%v, want OOM", err)
	}
}

func TestMonotonicInInput(t *testing.T) {
	e := env(t)
	for _, eng := range []string{EngineJava, EngineSpark, EngineHama} {
		res := StandardCluster
		if eng == EngineJava {
			res = SingleNode
		}
		prev := 0.0
		for _, edges := range []int64{1e4, 1e5, 1e6, 1e7} {
			sec := gt(t, e, eng, pagerankInput(edges), res)
			if sec <= prev {
				t.Errorf("%s: time not increasing at %d edges (%.2f <= %.2f)", eng, edges, sec, prev)
			}
			prev = sec
		}
	}
}

func TestMoreResourcesNeverSlower(t *testing.T) {
	e := env(t)
	in := Input{Records: 1e6, Bytes: 5e9}
	small, err := e.GroundTruthSec(EngineSpark, AlgTFIDF, in, Resources{Nodes: 2, CoresPerN: 2, MemMBPerN: 2048})
	if err != nil {
		t.Fatal(err)
	}
	big, err := e.GroundTruthSec(EngineSpark, AlgTFIDF, in, Resources{Nodes: 16, CoresPerN: 2, MemMBPerN: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if big >= small {
		t.Errorf("16 nodes (%.1fs) not faster than 2 nodes (%.1fs)", big, small)
	}
}

func TestDiskFactorAffectsDiskBoundEngines(t *testing.T) {
	e := env(t)
	in := Input{Records: 1e6, Bytes: 1e9}
	hdd, err := e.GroundTruthSec(EngineMapReduce, AlgWordcount, in, StandardCluster)
	if err != nil {
		t.Fatal(err)
	}
	infra := e.Infrastructure()
	infra.DiskFactor = 0.3 // SSD upgrade
	e.SetInfrastructure(infra)
	ssd, err := e.GroundTruthSec(EngineMapReduce, AlgWordcount, in, StandardCluster)
	if err != nil {
		t.Fatal(err)
	}
	if ssd >= hdd {
		t.Errorf("SSD (%.1fs) not faster than HDD (%.1fs)", ssd, hdd)
	}
}

func TestExecuteProducesMetrics(t *testing.T) {
	e := env(t)
	run, err := e.Execute(EngineSpark, AlgTFIDF, Input{Records: 10_000, Bytes: 5e7}, StandardCluster, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if run.ExecTimeSec <= 0 || run.Failed {
		t.Fatalf("bad run: %+v", run)
	}
	if run.CostUnits <= 0 {
		t.Error("cost not computed")
	}
	if run.OutputRecords <= 0 || run.OutputBytes <= 0 {
		t.Error("output stats not computed")
	}
	if len(run.Timeline) != 8 {
		t.Errorf("timeline has %d samples, want 8", len(run.Timeline))
	}
	if run.Params["records"] != 10_000 || run.Params["nodes"] != 16 {
		t.Errorf("params not recorded: %v", run.Params)
	}
	if _, ok := run.Feature("records"); !ok {
		t.Error("Feature lookup failed")
	}
	if v, ok := run.Feature("execTime"); !ok || v != run.ExecTimeSec {
		t.Error("execTime feature mismatch")
	}
}

func TestExecuteNoiseBounded(t *testing.T) {
	e := env(t)
	truth, err := e.GroundTruthSec(EngineSpark, AlgTFIDF, Input{Records: 50_000, Bytes: 1e8}, StandardCluster)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		run, err := e.Execute(EngineSpark, AlgTFIDF, Input{Records: 50_000, Bytes: 1e8}, StandardCluster, 0)
		if err != nil {
			t.Fatal(err)
		}
		ratio := run.ExecTimeSec / truth
		if ratio < 0.5 || ratio > 2.0 {
			t.Fatalf("noise out of bounds: ratio=%.2f", ratio)
		}
	}
}

func TestUnavailableEngine(t *testing.T) {
	e := env(t)
	e.SetAvailable(EngineSpark, false)
	run, err := e.Execute(EngineSpark, AlgTFIDF, Input{Records: 1000, Bytes: 1e6}, StandardCluster, 0)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if !run.Failed || run.FailureReason == "" {
		t.Error("failed run not recorded")
	}
	e.SetAvailable(EngineSpark, true)
	if _, err := e.Execute(EngineSpark, AlgTFIDF, Input{Records: 1000, Bytes: 1e6}, StandardCluster, 0); err != nil {
		t.Fatalf("restored engine still failing: %v", err)
	}
}

func TestErrorCases(t *testing.T) {
	e := env(t)
	if _, err := e.GroundTruthSec("NoSuchEngine", AlgTFIDF, Input{Records: 1}, SingleNode); !errors.Is(err, ErrUnknownEngine) {
		t.Errorf("unknown engine: %v", err)
	}
	if _, err := e.GroundTruthSec(EngineSpark, "no_such_alg", Input{Records: 1}, StandardCluster); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("unknown algorithm: %v", err)
	}
	if _, err := e.GroundTruthSec(EngineSpark, AlgTFIDF, Input{Records: 1}, Resources{}); err == nil {
		t.Error("zero resources accepted")
	}
}

func TestTransferSec(t *testing.T) {
	e := env(t)
	base := e.TransferSec(0)
	if base <= 0 {
		t.Fatal("zero-byte transfer should still cost the fixed setup")
	}
	small := e.TransferSec(1e6)
	big := e.TransferSec(1e9)
	if !(base <= small && small < big) {
		t.Fatalf("transfer not monotonic: %v %v %v", base, small, big)
	}
	if neg := e.TransferSec(-5); neg != base {
		t.Fatalf("negative bytes should clamp to fixed cost, got %v", neg)
	}
}

func TestScaleParams(t *testing.T) {
	e := env(t)
	in8 := Input{Records: 100_000, Bytes: 1e8, Params: map[string]float64{"k": 8}}
	in32 := Input{Records: 100_000, Bytes: 1e8, Params: map[string]float64{"k": 32}}
	t8, err := e.GroundTruthSec(EngineSpark, AlgKMeans, in8, StandardCluster)
	if err != nil {
		t.Fatal(err)
	}
	t32, err := e.GroundTruthSec(EngineSpark, AlgKMeans, in32, StandardCluster)
	if err != nil {
		t.Fatal(err)
	}
	if t32 <= t8 {
		t.Errorf("k=32 (%.2f) not slower than k=8 (%.2f)", t32, t8)
	}
}

// Property: ground truth is deterministic and positive for arbitrary valid
// inputs across all engines and algorithms (or fails with a typed error).
func TestQuickGroundTruthDeterministic(t *testing.T) {
	e := env(t)
	engines := e.Engines()
	algs := []string{AlgPagerank, AlgTFIDF, AlgKMeans, AlgWordcount, AlgLineCount, AlgSQLQ1}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		eng := engines[r.Intn(len(engines))]
		alg := algs[r.Intn(len(algs))]
		in := Input{Records: int64(r.Intn(1_000_000) + 1), Bytes: int64(r.Intn(1_000_000_000) + 1)}
		res := Resources{Nodes: r.Intn(16) + 1, CoresPerN: r.Intn(4) + 1, MemMBPerN: (r.Intn(8) + 1) * 1024}
		a, errA := e.GroundTruthSec(eng, alg, in, res)
		b, errB := e.GroundTruthSec(eng, alg, in, res)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return errors.Is(errA, ErrOutOfMemory)
		}
		return a == b && a > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResourcesHelpers(t *testing.T) {
	r := Resources{Nodes: 4, CoresPerN: 2, MemMBPerN: 1024}
	if r.TotalCores() != 8 || r.TotalMemMB() != 4096 {
		t.Fatal("totals wrong")
	}
	if r.CostRate() != 4*2*1.0 {
		t.Fatalf("CostRate = %v", r.CostRate())
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

func TestAffinityScalesRates(t *testing.T) {
	e := env(t)
	// scikit has a 3x affinity for TF_IDF and 0.5x for kmeans: the same
	// engine must beat its own base rate on one algorithm and trail it on
	// the other, relative to an affinity-free engine of equal base rate.
	in := Input{Records: 100_000, Bytes: 5e8}
	sciTfidf, err := e.GroundTruthSec(EngineScikit, AlgTFIDF, in, SingleNode)
	if err != nil {
		t.Fatal(err)
	}
	sciKmeans, err := e.GroundTruthSec(EngineScikit, AlgKMeans, in, SingleNode)
	if err != nil {
		t.Fatal(err)
	}
	// tfidf: 2000 units/rec with 3x affinity; kmeans: 7500 units/rec with
	// 0.5x affinity -> kmeans must be far more than 7500/2000 ~ 3.75x
	// slower (6x affinity gap on top).
	if ratio := sciKmeans / sciTfidf; ratio < 10 {
		t.Errorf("affinity not applied: kmeans/tfidf ratio = %.1f", ratio)
	}
}

func TestTimelineShape(t *testing.T) {
	e := env(t)
	run, err := e.Execute(EngineSpark, AlgTFIDF, Input{Records: 10_000, Bytes: 5e7}, StandardCluster, 0)
	if err != nil {
		t.Fatal(err)
	}
	tl := run.Timeline
	if tl[0].AtSec != 0 || tl[len(tl)-1].AtSec <= 0 {
		t.Fatalf("timeline bounds wrong: %+v", tl)
	}
	// Ramp up then down: the middle sample is the busiest.
	mid := tl[len(tl)/2]
	if mid.CPUUtil <= tl[0].CPUUtil {
		t.Error("timeline has no plateau")
	}
	for _, s := range tl {
		if s.CPUUtil < 0 || s.CPUUtil > 1 || s.MemUsedMB < 0 {
			t.Fatalf("implausible sample %+v", s)
		}
	}
}
