package engine

import "testing"

// Interleaving runs of other operators must not perturb the noise stream an
// operator sees: each (engine, algorithm) pair draws from its own seeded
// stream, so A's n-th draw is the same whether or not B ran in between.
func TestNoiseStreamsAreInterleavingInvariant(t *testing.T) {
	const seed = 42
	const draws = 50

	alone := newNoiseSource(seed)
	var want []float64
	for i := 0; i < draws; i++ {
		want = append(want, alone.factor("Spark", "TF_IDF"))
	}

	interleaved := newNoiseSource(seed)
	for i := 0; i < draws; i++ {
		got := interleaved.factor("Spark", "TF_IDF")
		if got != want[i] {
			t.Fatalf("draw %d: interleaved factor %v != solo factor %v", i, got, want[i])
		}
		// Interleave draws from other streams between every A draw.
		interleaved.factor("Hama", "kmeans")
		interleaved.factor("Spark", "kmeans") // same engine, different algorithm
		interleaved.factor("MapReduce", "TF_IDF")
	}
}

// Engine executions observe the same invariance end to end: durations of a
// fixed operator sequence are unchanged by unrelated runs in between.
func TestExecuteNoiseInterleavingInvariant(t *testing.T) {
	run := func(env *Environment, interleave bool) []float64 {
		res := Resources{Nodes: 4, CoresPerN: 2, MemMBPerN: 3456}
		in := Input{Records: 100_000, Bytes: 100_000_000}
		var out []float64
		for i := 0; i < 10; i++ {
			r, err := env.Execute(EngineSpark, AlgTFIDF, in, res, 0)
			if err != nil {
				t.Fatalf("Execute(Spark, TF_IDF): %v", err)
			}
			out = append(out, r.ExecTimeSec)
			if interleave {
				if _, err := env.Execute(EngineHama, AlgKMeans, in, res, 0); err != nil {
					t.Fatalf("Execute(Hama, kmeans): %v", err)
				}
			}
		}
		return out
	}

	solo := run(NewDefaultEnvironment(7), false)
	mixed := run(NewDefaultEnvironment(7), true)
	for i := range solo {
		if solo[i] != mixed[i] {
			t.Fatalf("run %d: duration %v (solo) != %v (interleaved)", i, solo[i], mixed[i])
		}
	}
}
