package engine

import "math"

// CheckpointSpec describes the checkpointable structure of one run: how many
// natural boundaries the algorithm exposes and what a checkpoint write (and a
// later restore) costs in virtual time. Iterative algorithms (those with an
// IterParam, e.g. PageRank, k-means) checkpoint at iteration boundaries;
// single-pass scan/join-shaped operators checkpoint at partition boundaries,
// one partition per parallel task slot. The costs follow the same modeled
// shape as TransferSec: a fixed barrier/commit overhead plus state volume
// over the checkpoint bandwidth, divided across the parallel writers.
type CheckpointSpec struct {
	// Unit is "iteration" for fixpoint algorithms, "partition" otherwise.
	Unit string
	// Units is the number of checkpointable work units in the run (the
	// iteration count, or the partition count).
	Units int
	// WriteSec is the virtual-time cost of writing one checkpoint.
	WriteSec float64
	// RestoreSec is the virtual-time cost of seeding an attempt from a
	// stored checkpoint.
	RestoreSec float64
}

// checkpointFixedSec is the per-checkpoint barrier/commit overhead: the cost
// of quiescing the computation and committing the snapshot marker, paid even
// for tiny state.
const checkpointFixedSec = 0.25

// CheckpointSpec computes the checkpointable structure of algorithm on
// engineName for the given input and resources. The second return is false
// when the run is not usefully checkpointable: unknown engine/algorithm, or
// fewer than two work units (a single unit has no interior boundary).
func (e *Environment) CheckpointSpec(engineName, algorithm string, in Input, res Resources) (CheckpointSpec, bool) {
	e.mu.RLock()
	p, okE := e.engines[engineName]
	w, okW := e.workloads[algorithm]
	infra := e.infra
	e.mu.RUnlock()
	if !okE || !okW {
		return CheckpointSpec{}, false
	}

	n := float64(in.Records)
	if n < 1 {
		n = 1
	}

	var spec CheckpointSpec
	var stateBytes float64 // bytes persisted per checkpoint
	if w.IterParam != "" {
		// Iteration boundaries: the state is the full in-memory working set
		// (ranks, centroids + assignments, ...), snapshotted each boundary.
		spec.Unit = "iteration"
		iters := in.Param(w.IterParam, w.DefaultIters)
		if iters < 1 {
			iters = 1
		}
		spec.Units = int(iters)
		stateBytes = n * w.MemBytesPerRecord
		if stateBytes <= 0 {
			stateBytes = float64(in.Bytes)
		}
	} else {
		// Partition boundaries: one partition per parallel task slot; each
		// checkpoint persists that partition's share of the output.
		spec.Unit = "partition"
		parts := res.TotalCores()
		if p.Centralized {
			parts = res.CoresPerN
		}
		if parts < 2 {
			parts = 2
		}
		if parts > 32 {
			parts = 32
		}
		spec.Units = parts
		out := float64(in.Bytes) * w.OutputFactor
		if out <= 0 {
			out = float64(in.Bytes)
		}
		stateBytes = out / float64(spec.Units)
	}
	if spec.Units < 2 {
		return CheckpointSpec{}, false
	}

	rate := infra.CheckpointMBps
	if rate <= 0 {
		rate = infra.NetworkMBps
	}
	if rate <= 0 {
		rate = 100
	}
	writers := res.Nodes
	if p.Centralized || writers < 1 {
		writers = 1
	}
	if stateBytes < 0 {
		stateBytes = 0
	}
	transfer := stateBytes / (rate * 1e6 * float64(writers))
	spec.WriteSec = checkpointFixedSec + transfer
	// Restore re-reads the snapshot into the fresh attempt's memory; the
	// fixed part covers locating and opening it.
	spec.RestoreSec = checkpointFixedSec + transfer
	// Guard against degenerate math (e.g. absurd record counts in tests).
	if math.IsNaN(spec.WriteSec) || math.IsInf(spec.WriteSec, 0) {
		return CheckpointSpec{}, false
	}
	return spec, true
}
