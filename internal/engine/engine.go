// Package engine simulates the execution engines and datastores that IReS
// schedules over (Hadoop/MapReduce, Spark, Hama, Java, scikit, MLlib,
// PostgreSQL, MemSQL, ...). The real platform treats engines as black boxes
// observed only through run metrics; this package supplies the same
// observation surface from analytic ground-truth cost curves, calibrated so
// the performance regimes reported in D3.3 Figures 11-13 (centralized wins
// small, BSP-in-memory wins medium then OOMs, Spark scales; per-store SQL
// locality) are reproduced on a laptop.
package engine

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/asap-project/ires/internal/metrics"
)

// Failure modes surfaced by the simulated engines.
var (
	// ErrOutOfMemory indicates the working set exceeded the engine's memory
	// capacity (single-node for centralized engines, cluster aggregate for
	// distributed in-memory engines).
	ErrOutOfMemory = errors.New("engine: out of memory")
	// ErrUnavailable indicates the engine service is OFF (killed or not
	// deployed), as tracked by the availability monitor.
	ErrUnavailable = errors.New("engine: service unavailable")
	// ErrUnknownEngine indicates the engine is not registered.
	ErrUnknownEngine = errors.New("engine: unknown engine")
	// ErrUnknownAlgorithm indicates no workload profile exists for the
	// algorithm on the chosen engine.
	ErrUnknownAlgorithm = errors.New("engine: unknown algorithm")
)

// Resources describes the container resources provisioned for a run,
// following the paper's cost metric #VM * cores/VM * GB/VM * t.
type Resources struct {
	Nodes     int // number of containers/VMs
	CoresPerN int // cores per container
	MemMBPerN int // main memory per container, MB
}

// TotalCores returns the total core count.
func (r Resources) TotalCores() int { return r.Nodes * r.CoresPerN }

// TotalMemMB returns the aggregate memory in MB.
func (r Resources) TotalMemMB() int { return r.Nodes * r.MemMBPerN }

// CostRate returns the paper's resource cost rate: #VM * cores/VM * GB/VM.
// Multiplying by execution time (in seconds) yields the execution cost.
func (r Resources) CostRate() float64 {
	return float64(r.Nodes) * float64(r.CoresPerN) * float64(r.MemMBPerN) / 1024.0
}

func (r Resources) String() string {
	return fmt.Sprintf("%dx(%dc,%dMB)", r.Nodes, r.CoresPerN, r.MemMBPerN)
}

// Validate checks the resource request is positive in all dimensions.
func (r Resources) Validate() error {
	if r.Nodes <= 0 || r.CoresPerN <= 0 || r.MemMBPerN <= 0 {
		return fmt.Errorf("engine: invalid resources %v", r)
	}
	return nil
}

// Input describes the data fed to a simulated run.
type Input struct {
	Records int64
	Bytes   int64
	// Params carries operator-specific parameters (e.g. "iterations" for
	// PageRank, "k" for k-means).
	Params map[string]float64
}

// Param returns a named parameter with a default.
func (in Input) Param(name string, def float64) float64 {
	if v, ok := in.Params[name]; ok {
		return v
	}
	return def
}

// Profile captures the black-box performance character of one engine.
// The simulator derives execution time as
//
//	t = Startup + PerTask*tasks + W / (Rate * speedup(p)) * diskSlowdown
//
// where W is the workload's abstract compute volume, p the effective
// parallelism, and speedup follows Amdahl's law with the engine's serial
// fraction.
type Profile struct {
	Name        string
	Centralized bool // runs on a single node regardless of provisioned nodes
	// InMemory engines hold the working set in RAM: centralized ones are
	// bounded by one node's memory, distributed ones by cluster aggregate.
	InMemory bool

	StartupSec  float64 // job submission / JVM / session overhead
	PerTaskSec  float64 // scheduling overhead per parallel task wave
	RateUnitsPS float64 // abstract compute units per second per core
	SerialFrac  float64 // Amdahl serial fraction in [0,1]
	DiskBound   float64 // fraction of runtime scaled by the infra disk factor

	// MemOverhead multiplies the workload's per-record memory need (e.g.
	// BSP message buffers make Hama hungrier than Spark).
	MemOverhead float64

	FS string // native datastore ("HDFS", "LFS", "PostgreSQL", "MemSQL")
}

// Workload captures the per-algorithm cost shape, engine-independent.
type Workload struct {
	Algorithm string
	// UnitsPerRecord is the abstract compute volume per input record.
	UnitsPerRecord float64
	// LogN adds an n*log2(n) component (sorts, shuffles).
	LogN bool
	// IterParam names the parameter holding the iteration count; empty for
	// single-pass operators. DefaultIters applies when the parameter is
	// absent.
	IterParam    string
	DefaultIters float64
	// MemBytesPerRecord is the in-memory working-set footprint per record.
	MemBytesPerRecord float64
	// OutputFactor relates output bytes/records to input.
	OutputFactor float64
	// MinOutputRecords floors the output cardinality (e.g. k-means emits at
	// least k centroids).
	MinOutputRecords int64
	// ScaleParams scale the compute volume linearly with named parameters
	// relative to a reference value (e.g. k-means cost grows with "k").
	ScaleParams []ParamScale
	// Affinity multiplies an engine's compute rate for this algorithm
	// (implementation-quality interactions: e.g. scikit's C-optimized
	// vectorizer excels at tf-idf while its k-means lags). Engines absent
	// from the map run at their base rate.
	Affinity map[string]float64
}

// ParamScale declares that compute volume scales linearly with Param,
// normalised at Ref (volume is multiplied by param/Ref).
type ParamScale struct {
	Param string
	Ref   float64
}

// Infrastructure models cluster-wide hardware characteristics that affect
// every engine. DiskFactor scales disk-bound time (1.0 = the baseline HDD
// substrate; the Fig 16b experiment swaps in SSDs with a smaller factor).
type Infrastructure struct {
	DiskFactor    float64
	NetworkMBps   float64 // inter-engine transfer bandwidth
	TransferFixed float64 // fixed seconds per data movement (session setup)
	// CheckpointMBps is the aggregate bandwidth available for writing
	// sub-operator checkpoints to durable storage; zero or negative falls
	// back to NetworkMBps (so infrastructures built before the field existed
	// keep a sane checkpoint cost).
	CheckpointMBps float64
}

// DefaultInfrastructure returns the baseline HDD infrastructure.
func DefaultInfrastructure() Infrastructure {
	return Infrastructure{DiskFactor: 1.0, NetworkMBps: 100, TransferFixed: 1.5, CheckpointMBps: 200}
}

// Environment is the deployed multi-engine cloud: the engine registry,
// workload profiles, infrastructure state and service availability. It is
// the ground truth the profiler samples and the executor charges against.
// Environment is safe for concurrent use.
type Environment struct {
	mu        sync.RWMutex
	engines   map[string]Profile
	workloads map[string]Workload
	infra     Infrastructure
	available map[string]bool
	noise     *noiseSource
	// availGen counts availability flips; infraGen counts registrations and
	// infrastructure swaps. The planner handles availability changes with
	// scoped partial invalidation (its per-engine fingerprint), while
	// infrastructure changes — which shift every resource/estimate — force a
	// wholesale flush via InfraGen.
	availGen uint64
	infraGen uint64
}

// Gen returns the environment's total mutation generation counter
// (availability flips plus infrastructure/registration changes).
func (e *Environment) Gen() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.availGen + e.infraGen
}

// InfraGen returns the generation counter of infrastructure-shaped
// mutations only: engine registrations and infrastructure swaps.
func (e *Environment) InfraGen() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.infraGen
}

// NewEnvironment returns an environment with the given infrastructure and
// no engines registered. Seed drives the deterministic run-to-run noise.
func NewEnvironment(infra Infrastructure, seed int64) *Environment {
	return &Environment{
		engines:   make(map[string]Profile),
		workloads: make(map[string]Workload),
		infra:     infra,
		available: make(map[string]bool),
		noise:     newNoiseSource(seed),
	}
}

// Register adds (or replaces) an engine profile; the engine starts ON.
func (e *Environment) Register(p Profile) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.engines[p.Name] = p
	e.available[p.Name] = true
	e.infraGen++
}

// RegisterWorkload adds (or replaces) an algorithm workload profile.
func (e *Environment) RegisterWorkload(w Workload) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.workloads[w.Algorithm] = w
}

// Engine returns the profile of a registered engine.
func (e *Environment) Engine(name string) (Profile, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	p, ok := e.engines[name]
	return p, ok
}

// Engines returns the registered engine names, sorted.
func (e *Environment) Engines() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.engines))
	for n := range e.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetAvailable flips an engine's service status (ON/OFF). Unavailable
// engines fail every run and are excluded by the planner.
func (e *Environment) SetAvailable(name string, on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.available[name] != on {
		e.availGen++
	}
	e.available[name] = on
}

// Available reports the engine's service status.
func (e *Environment) Available(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.available[name]
}

// Infrastructure returns the current infrastructure state.
func (e *Environment) Infrastructure() Infrastructure {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.infra
}

// SetInfrastructure swaps the infrastructure (e.g. the Fig 16b HDD -> SSD
// upgrade). Subsequent runs observe the new hardware.
func (e *Environment) SetInfrastructure(infra Infrastructure) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.infra = infra
	e.infraGen++
}

// GroundTruthSec computes the noise-free execution time of algorithm on
// engineName with the given input and resources. It returns ErrOutOfMemory
// when the working set exceeds capacity. This is what a perfectly informed
// oracle would predict; Execute adds run-to-run noise.
func (e *Environment) GroundTruthSec(engineName, algorithm string, in Input, res Resources) (float64, error) {
	e.mu.RLock()
	p, okE := e.engines[engineName]
	w, okW := e.workloads[algorithm]
	infra := e.infra
	e.mu.RUnlock()
	if !okE {
		return 0, fmt.Errorf("%w: %s", ErrUnknownEngine, engineName)
	}
	if !okW {
		return 0, fmt.Errorf("%w: %s on %s", ErrUnknownAlgorithm, algorithm, engineName)
	}
	if err := res.Validate(); err != nil {
		return 0, err
	}
	return groundTruth(p, w, infra, in, res)
}

func groundTruth(p Profile, w Workload, infra Infrastructure, in Input, res Resources) (float64, error) {
	n := float64(in.Records)
	if n < 1 {
		n = 1
	}
	iters := 1.0
	if w.IterParam != "" {
		iters = in.Param(w.IterParam, w.DefaultIters)
		if iters < 1 {
			iters = 1
		}
	}

	// Memory feasibility.
	if p.InMemory {
		need := n * w.MemBytesPerRecord * p.MemOverhead
		var capBytes float64
		if p.Centralized {
			capBytes = float64(res.MemMBPerN) * 1e6
		} else {
			capBytes = float64(res.TotalMemMB()) * 1e6
		}
		if need > capBytes {
			return 0, fmt.Errorf("%w: need %.0fMB, have %.0fMB on %s",
				ErrOutOfMemory, need/1e6, capBytes/1e6, p.Name)
		}
	}

	// Compute volume.
	units := n * w.UnitsPerRecord
	if w.LogN {
		units *= math.Log2(n + 2)
	}
	units *= iters
	for _, s := range w.ScaleParams {
		v := in.Param(s.Param, s.Ref)
		if v < 1 {
			v = 1
		}
		if s.Ref > 0 {
			units *= v / s.Ref
		}
	}

	// Effective parallelism with Amdahl scaling.
	cores := float64(res.TotalCores())
	if p.Centralized {
		cores = float64(res.CoresPerN)
	}
	if cores < 1 {
		cores = 1
	}
	speedup := 1.0 / (p.SerialFrac + (1.0-p.SerialFrac)/cores)

	rate := p.RateUnitsPS
	if aff, ok := w.Affinity[p.Name]; ok && aff > 0 {
		rate *= aff
	}
	compute := units / (rate * speedup)

	// Disk-bound share is stretched by the infrastructure disk factor.
	compute = compute*(1.0-p.DiskBound) + compute*p.DiskBound*infra.DiskFactor

	// Per-wave task overhead: one wave per iteration on distributed engines.
	tasks := 0.0
	if !p.Centralized {
		tasks = iters
	}
	return p.StartupSec + p.PerTaskSec*tasks + compute, nil
}

// Execute performs a simulated run: it computes the ground-truth duration,
// applies deterministic multiplicative noise, and assembles the full
// monitoring record. The at argument timestamps the run (virtual time).
func (e *Environment) Execute(engineName, algorithm string, in Input, res Resources, at time.Duration) (*metrics.Run, error) {
	run := &metrics.Run{
		Algorithm: algorithm,
		Engine:    engineName,
		Params:    runParams(in, res),
		Date:      time.Unix(0, 0).Add(at),
	}
	if !e.Available(engineName) {
		run.Failed = true
		run.FailureReason = ErrUnavailable.Error()
		return run, fmt.Errorf("%w: %s", ErrUnavailable, engineName)
	}
	sec, err := e.GroundTruthSec(engineName, algorithm, in, res)
	if err != nil {
		run.Failed = true
		run.FailureReason = err.Error()
		return run, err
	}
	sec *= e.noise.factor(engineName, algorithm)

	e.mu.RLock()
	w := e.workloads[algorithm]
	e.mu.RUnlock()

	run.ExecTimeSec = sec
	run.CostUnits = res.CostRate() * sec
	run.InputRecords = in.Records
	run.InputBytes = in.Bytes
	outRecords := int64(float64(in.Records) * w.OutputFactor)
	if outRecords < w.MinOutputRecords {
		outRecords = w.MinOutputRecords
	}
	run.OutputRecords = outRecords
	run.OutputBytes = int64(float64(in.Bytes) * w.OutputFactor)
	run.Timeline = e.timeline(sec, res)
	return run, nil
}

// TransferSec returns the simulated duration of moving size bytes between
// two engines/datastores (the move/transform operators the planner inserts).
func (e *Environment) TransferSec(bytes int64) float64 {
	infra := e.Infrastructure()
	if bytes < 0 {
		bytes = 0
	}
	return infra.TransferFixed + float64(bytes)/(infra.NetworkMBps*1e6)
}

// timeline synthesizes a plausible 8-sample system-metric timeline for a
// run, matching the shape of the periodic Ganglia pull described in the
// paper.
func (e *Environment) timeline(sec float64, res Resources) []metrics.Snapshot {
	const samples = 8
	out := make([]metrics.Snapshot, samples)
	for i := 0; i < samples; i++ {
		frac := float64(i) / float64(samples-1)
		// Ramp up, plateau, ramp down.
		util := 0.9 - 0.6*math.Abs(2*frac-1)
		out[i] = metrics.Snapshot{
			AtSec:       sec * frac,
			CPUUtil:     util,
			MemUsedMB:   float64(res.TotalMemMB()) * (0.3 + 0.5*util),
			NetworkMBps: 40 * util,
			DiskIOPS:    800 * util,
		}
	}
	return out
}

func runParams(in Input, res Resources) map[string]float64 {
	p := map[string]float64{
		"records":  float64(in.Records),
		"bytes":    float64(in.Bytes),
		"nodes":    float64(res.Nodes),
		"cores":    float64(res.CoresPerN),
		"memoryMB": float64(res.MemMBPerN),
	}
	for k, v := range in.Params {
		p[k] = v
	}
	return p
}
