package engine

import (
	"math"
	"testing"
)

// ckptEnv builds a minimal environment with one distributed and one
// centralized engine plus an iterative and a single-pass workload, so the
// checkpoint-spec shape can be asserted without the full calibration set.
func ckptEnv(infra Infrastructure) *Environment {
	e := NewEnvironment(infra, 1)
	e.Register(Profile{Name: "dist", RateUnitsPS: 1e6, MemOverhead: 1})
	e.Register(Profile{Name: "central", Centralized: true, RateUnitsPS: 1e6, MemOverhead: 1})
	e.RegisterWorkload(Workload{
		Algorithm: "iter", UnitsPerRecord: 1,
		IterParam: "iterations", DefaultIters: 8, MemBytesPerRecord: 100,
	})
	e.RegisterWorkload(Workload{
		Algorithm: "scan", UnitsPerRecord: 1, OutputFactor: 0.5,
	})
	return e
}

func defaultCkptInfra() Infrastructure {
	return Infrastructure{DiskFactor: 1, NetworkMBps: 100, TransferFixed: 1.5, CheckpointMBps: 200}
}

func TestCheckpointSpecUnknownEngineOrAlgorithm(t *testing.T) {
	e := ckptEnv(defaultCkptInfra())
	in := Input{Records: 1000, Bytes: 1_000_000}
	if _, ok := e.CheckpointSpec("nope", "iter", in, StandardCluster); ok {
		t.Error("unknown engine reported checkpointable")
	}
	if _, ok := e.CheckpointSpec("dist", "nope", in, StandardCluster); ok {
		t.Error("unknown algorithm reported checkpointable")
	}
}

func TestCheckpointSpecIterative(t *testing.T) {
	e := ckptEnv(defaultCkptInfra())
	in := Input{Records: 1_000_000, Bytes: 40_000_000, Params: map[string]float64{"iterations": 40}}
	res := Resources{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}
	spec, ok := e.CheckpointSpec("dist", "iter", in, res)
	if !ok {
		t.Fatal("iterative run not checkpointable")
	}
	if spec.Unit != "iteration" || spec.Units != 40 {
		t.Fatalf("got %s x%d, want iteration x40", spec.Unit, spec.Units)
	}
	// State is records * MemBytesPerRecord, written by all 16 nodes at the
	// checkpoint bandwidth, plus the fixed barrier cost.
	state := 1_000_000 * 100.0
	want := 0.25 + state/(200*1e6*16)
	if math.Abs(spec.WriteSec-want) > 1e-9 {
		t.Errorf("WriteSec = %v, want %v", spec.WriteSec, want)
	}
	if spec.RestoreSec != spec.WriteSec {
		t.Errorf("RestoreSec = %v, want same as WriteSec %v", spec.RestoreSec, spec.WriteSec)
	}
}

func TestCheckpointSpecIterativeDefaults(t *testing.T) {
	e := ckptEnv(defaultCkptInfra())
	// No iterations param: DefaultIters (8) applies.
	spec, ok := e.CheckpointSpec("dist", "iter", Input{Records: 1000, Bytes: 40_000}, StandardCluster)
	if !ok || spec.Units != 8 {
		t.Fatalf("got ok=%v units=%d, want 8 default iterations", ok, spec.Units)
	}
	// A single iteration has no interior boundary: not checkpointable.
	one := Input{Records: 1000, Bytes: 40_000, Params: map[string]float64{"iterations": 1}}
	if _, ok := e.CheckpointSpec("dist", "iter", one, StandardCluster); ok {
		t.Error("single-iteration run reported checkpointable")
	}
}

func TestCheckpointSpecPartitions(t *testing.T) {
	e := ckptEnv(defaultCkptInfra())
	in := Input{Records: 1000, Bytes: 1_000_000}

	// Distributed: one partition per core.
	spec, ok := e.CheckpointSpec("dist", "scan", in, Resources{Nodes: 8, CoresPerN: 2, MemMBPerN: 3456})
	if !ok || spec.Unit != "partition" || spec.Units != 16 {
		t.Fatalf("distributed scan: ok=%v %s x%d, want partition x16", ok, spec.Unit, spec.Units)
	}

	// Partition count clamps to 32 on very wide clusters...
	spec, ok = e.CheckpointSpec("dist", "scan", in, Resources{Nodes: 64, CoresPerN: 2, MemMBPerN: 3456})
	if !ok || spec.Units != 32 {
		t.Fatalf("wide scan: ok=%v x%d, want clamp to 32", ok, spec.Units)
	}

	// ...and up to 2 on a single-core slice (an interior boundary always
	// exists for a splittable scan).
	spec, ok = e.CheckpointSpec("central", "scan", in, Resources{Nodes: 4, CoresPerN: 1, MemMBPerN: 3456})
	if !ok || spec.Units != 2 {
		t.Fatalf("single-core scan: ok=%v x%d, want clamp to 2", ok, spec.Units)
	}

	// Centralized engines partition by one node's cores and write from a
	// single node regardless of provisioned nodes.
	res := Resources{Nodes: 4, CoresPerN: 4, MemMBPerN: 3456}
	spec, ok = e.CheckpointSpec("central", "scan", in, res)
	if !ok || spec.Units != 4 {
		t.Fatalf("centralized scan: ok=%v x%d, want CoresPerN=4 partitions", ok, spec.Units)
	}
	state := float64(in.Bytes) * 0.5 / 4 // output share of one partition
	want := 0.25 + state/(200*1e6*1)     // single writer
	if math.Abs(spec.WriteSec-want) > 1e-9 {
		t.Errorf("centralized WriteSec = %v, want %v", spec.WriteSec, want)
	}
}

func TestCheckpointSpecBandwidthFallback(t *testing.T) {
	in := Input{Records: 1_000_000, Bytes: 40_000_000, Params: map[string]float64{"iterations": 10}}
	res := Resources{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}
	state := 1_000_000 * 100.0

	// CheckpointMBps unset: falls back to NetworkMBps.
	e := ckptEnv(Infrastructure{DiskFactor: 1, NetworkMBps: 50, TransferFixed: 1.5})
	spec, ok := e.CheckpointSpec("dist", "iter", in, res)
	if !ok {
		t.Fatal("not checkpointable")
	}
	want := 0.25 + state/(50*1e6)
	if math.Abs(spec.WriteSec-want) > 1e-9 {
		t.Errorf("network fallback WriteSec = %v, want %v", spec.WriteSec, want)
	}

	// Both unset: the 100 MB/s floor applies.
	e = ckptEnv(Infrastructure{DiskFactor: 1})
	spec, ok = e.CheckpointSpec("dist", "iter", in, res)
	if !ok {
		t.Fatal("not checkpointable")
	}
	want = 0.25 + state/(100*1e6)
	if math.Abs(spec.WriteSec-want) > 1e-9 {
		t.Errorf("floor fallback WriteSec = %v, want %v", spec.WriteSec, want)
	}
}
