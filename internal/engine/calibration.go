package engine

// Calibrated engine and workload profiles. The constants below are the
// simulation's substitute for the paper's 16-VM OpenStack deployment
// (Hadoop 2.7, Spark 1.6, Hama 0.7, scikit-learn 0.17, MemSQL 5.0,
// Postgres 9.5 — D3.3 §4). They are chosen so the qualitative regimes of
// Figures 11-13 hold:
//
//   - Java/scikit/Postgres (centralized) win for small inputs: negligible
//     startup, high per-core rate, but no scale-out and a single node's RAM.
//   - Hama/MemSQL (distributed in-memory) win mid-range: moderate startup,
//     aggregate-memory working sets, but OOM once the cluster RAM is
//     exceeded (Hama at ~100M edges, MemSQL at ~2GB of joined tables).
//   - Spark/MapReduce (distributed, disk-backed) pay tens of seconds of
//     startup and per-wave overhead but never run out of memory and scale
//     with total cores.

// Engine names used across the repository.
const (
	EngineJava       = "Java"
	EngineSpark      = "Spark"
	EngineHama       = "Hama"
	EngineMapReduce  = "MapReduce"
	EngineScikit     = "scikit"
	EnginePostgreSQL = "PostgreSQL"
	EngineMemSQL     = "MemSQL"
	EngineHive       = "Hive"
	EnginePython     = "Python"
	EngineCilk       = "Cilk"
	EngineMLlib      = "MLlib" // Spark's ML library, deployed as its own service
)

// Datastore / filesystem names.
const (
	FSHDFS     = "HDFS"
	FSLocal    = "LFS"
	FSPostgres = "PostgreSQL"
	FSMemSQL   = "MemSQL"
)

// StandardCluster mirrors the paper's evaluation cluster: 16 VMs, 32 cores
// and 54GB RAM in total (D3.3 §4.4).
var StandardCluster = Resources{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}

// SingleNode is one VM of the standard cluster, the slice centralized
// engines run on.
var SingleNode = Resources{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456}

// DefaultProfiles returns the calibrated engine profiles.
func DefaultProfiles() []Profile {
	return []Profile{
		{
			Name: EngineJava, Centralized: true, InMemory: true,
			StartupSec: 1.0, PerTaskSec: 0, RateUnitsPS: 2.0e6,
			SerialFrac: 1.0, DiskBound: 0.15, MemOverhead: 1.0, FS: FSLocal,
		},
		{
			Name: EngineSpark, Centralized: false, InMemory: false,
			StartupSec: 12.0, PerTaskSec: 1.0, RateUnitsPS: 1.0e6,
			SerialFrac: 0.05, DiskBound: 0.35, MemOverhead: 1.0, FS: FSHDFS,
		},
		{
			Name: EngineMLlib, Centralized: false, InMemory: false,
			StartupSec: 14.0, PerTaskSec: 1.0, RateUnitsPS: 1.0e6,
			SerialFrac: 0.05, DiskBound: 0.35, MemOverhead: 1.0, FS: FSHDFS,
		},
		{
			Name: EngineHama, Centralized: false, InMemory: true,
			StartupSec: 6.0, PerTaskSec: 0.5, RateUnitsPS: 1.2e6,
			SerialFrac: 0.08, DiskBound: 0.05, MemOverhead: 2.0, FS: FSHDFS,
		},
		{
			Name: EngineMapReduce, Centralized: false, InMemory: false,
			StartupSec: 16.0, PerTaskSec: 2.0, RateUnitsPS: 0.6e6,
			SerialFrac: 0.05, DiskBound: 0.7, MemOverhead: 1.0, FS: FSHDFS,
		},
		{
			Name: EngineScikit, Centralized: true, InMemory: true,
			StartupSec: 0.5, PerTaskSec: 0, RateUnitsPS: 1.2e6,
			SerialFrac: 1.0, DiskBound: 0.1, MemOverhead: 1.2, FS: FSLocal,
		},
		{
			Name: EnginePostgreSQL, Centralized: true, InMemory: false,
			StartupSec: 0.2, PerTaskSec: 0, RateUnitsPS: 1.5e6,
			SerialFrac: 1.0, DiskBound: 0.6, MemOverhead: 1.0, FS: FSPostgres,
		},
		{
			Name: EngineMemSQL, Centralized: false, InMemory: true,
			StartupSec: 0.5, PerTaskSec: 0.2, RateUnitsPS: 2.0e6,
			SerialFrac: 0.10, DiskBound: 0.0, MemOverhead: 30.0, FS: FSMemSQL,
		},
		{
			Name: EngineHive, Centralized: false, InMemory: false,
			StartupSec: 20.0, PerTaskSec: 2.5, RateUnitsPS: 0.5e6,
			SerialFrac: 0.05, DiskBound: 0.7, MemOverhead: 1.0, FS: FSHDFS,
		},
		{
			Name: EnginePython, Centralized: true, InMemory: true,
			StartupSec: 0.2, PerTaskSec: 0, RateUnitsPS: 0.5e6,
			SerialFrac: 1.0, DiskBound: 0.1, MemOverhead: 1.2, FS: FSLocal,
		},
		{
			Name: EngineCilk, Centralized: true, InMemory: true,
			StartupSec: 0.3, PerTaskSec: 0, RateUnitsPS: 2.5e6,
			SerialFrac: 0.10, DiskBound: 0.1, MemOverhead: 1.0, FS: FSLocal,
		},
	}
}

// Algorithm names used across the repository (they appear in the
// Constraints.OpSpecification.Algorithm.name field of operator
// descriptions).
const (
	AlgPagerank  = "pagerank"
	AlgTFIDF     = "TF_IDF"
	AlgKMeans    = "kmeans"
	AlgWordcount = "wordcount"
	AlgLineCount = "LineCount"
	AlgSQLQ1     = "sql_q1"
	AlgSQLQ2     = "sql_q2"
	AlgSQLQ3     = "sql_q3"
	AlgHello     = "HelloWorld"
	AlgHello1    = "HelloWorld1"
	AlgHello2    = "HelloWorld2"
	AlgHello3    = "HelloWorld3"
	AlgMove      = "move" // synthetic data-movement operator
	AlgGrep      = "grep"
	AlgSort      = "sort"
	AlgJoin      = "join"
)

// DefaultWorkloads returns the calibrated per-algorithm cost shapes.
func DefaultWorkloads() []Workload {
	return []Workload{
		{
			// One record = one graph edge; cost linear in edges per
			// iteration; ~300B of adjacency + rank state per edge.
			Algorithm: AlgPagerank, UnitsPerRecord: 1.0,
			IterParam: "iterations", DefaultIters: 10,
			MemBytesPerRecord: 300, OutputFactor: 0.1,
		},
		{
			// One record = one document; tokenization dominates. Output is
			// one tf-idf vector per document. scikit's C vectorizer is ~3x
			// its base Python rate.
			Algorithm: AlgTFIDF, UnitsPerRecord: 2000,
			MemBytesPerRecord: 5e3, OutputFactor: 1.0,
			Affinity: map[string]float64{EngineScikit: 3.0},
		},
		{
			// One record = one feature vector; cost grows with k and
			// iterations. Distance computation over dense vectors is
			// heavier per record than tokenization, which puts the k-means
			// centralized/distributed crossover below tf-idf's — the source
			// of the paper's hybrid zone in Fig 12.
			Algorithm: AlgKMeans, UnitsPerRecord: 1500,
			IterParam: "iterations", DefaultIters: 5,
			MemBytesPerRecord: 4e3, OutputFactor: 0.01, MinOutputRecords: 8,
			ScaleParams: []ParamScale{{Param: "k", Ref: 8}},
			Affinity:    map[string]float64{EngineScikit: 0.5},
		},
		{
			// One record = one document; shuffle adds the n*log(n) term.
			Algorithm: AlgWordcount, UnitsPerRecord: 150, LogN: true,
			MemBytesPerRecord: 10e3, OutputFactor: 0.2,
		},
		{
			Algorithm: AlgLineCount, UnitsPerRecord: 2,
			MemBytesPerRecord: 100, OutputFactor: 1e-6, MinOutputRecords: 1,
		},
		// The three SPJ queries of the relational workflow (Fig 10/13).
		// q1 joins the small legacy tables, q2 the medium ones, q3 the
		// large fact tables; a record is a scanned row.
		{
			Algorithm: AlgSQLQ1, UnitsPerRecord: 20, LogN: true,
			MemBytesPerRecord: 150, OutputFactor: 0.05,
		},
		{
			Algorithm: AlgSQLQ2, UnitsPerRecord: 30, LogN: true,
			MemBytesPerRecord: 150, OutputFactor: 0.05,
		},
		{
			Algorithm: AlgSQLQ3, UnitsPerRecord: 40, LogN: true,
			MemBytesPerRecord: 150, OutputFactor: 0.02,
		},
		// HelloWorld chain used by the fault-tolerance experiment
		// (Table 1, Figs 18-22).
		{Algorithm: AlgHello, UnitsPerRecord: 5e4, MemBytesPerRecord: 100, OutputFactor: 1},
		{Algorithm: AlgHello1, UnitsPerRecord: 1e5, MemBytesPerRecord: 100, OutputFactor: 1},
		{Algorithm: AlgHello2, UnitsPerRecord: 2e5, MemBytesPerRecord: 100, OutputFactor: 1},
		{Algorithm: AlgHello3, UnitsPerRecord: 1.5e5, MemBytesPerRecord: 100, OutputFactor: 1},
		// Utility operators.
		{Algorithm: AlgGrep, UnitsPerRecord: 5, MemBytesPerRecord: 100, OutputFactor: 0.1},
		{Algorithm: AlgSort, UnitsPerRecord: 3, LogN: true, MemBytesPerRecord: 200, OutputFactor: 1},
		{Algorithm: AlgJoin, UnitsPerRecord: 25, LogN: true, MemBytesPerRecord: 250, OutputFactor: 0.3},
	}
}

// NewDefaultEnvironment builds an environment with every default engine and
// workload registered on the baseline infrastructure.
func NewDefaultEnvironment(seed int64) *Environment {
	env := NewEnvironment(DefaultInfrastructure(), seed)
	for _, p := range DefaultProfiles() {
		env.Register(p)
	}
	for _, w := range DefaultWorkloads() {
		env.RegisterWorkload(w)
	}
	return env
}
