package engine

import (
	"math"
	"math/rand"
	"sync"
)

// noiseSource produces deterministic, seed-driven multiplicative noise for
// run durations. Real clusters show run-to-run variance from collocation,
// GC, and network jitter; the profiler's models must cope with it, and the
// Fig 16a learning-curve experiment depends on it.
type noiseSource struct {
	mu  sync.Mutex
	rng *rand.Rand
	// sigma is the standard deviation of the log-normal noise.
	sigma float64
}

func newNoiseSource(seed int64) *noiseSource {
	return &noiseSource{rng: rand.New(rand.NewSource(seed)), sigma: 0.08}
}

// factor returns a multiplicative noise factor around 1.0. The engine and
// algorithm names perturb the draw so interleaving runs of different
// operators does not produce correlated noise.
func (n *noiseSource) factor(engine, algorithm string) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	z := n.rng.NormFloat64()
	_ = engine
	_ = algorithm
	f := math.Exp(n.sigma*z - n.sigma*n.sigma/2)
	// Clamp pathological tails.
	if f < 0.5 {
		f = 0.5
	}
	if f > 2.0 {
		f = 2.0
	}
	return f
}
