package engine

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
)

// noiseSource produces deterministic, seed-driven multiplicative noise for
// run durations. Real clusters show run-to-run variance from collocation,
// GC, and network jitter; the profiler's models must cope with it, and the
// Fig 16a learning-curve experiment depends on it.
//
// Each (engine, algorithm) pair draws from its own seeded stream, so the
// noise an operator sees depends only on how many runs *it* has done — not
// on which other operators happen to interleave with it. A single shared
// stream would couple every operator's durations to global call order,
// making fixed-seed experiments fragile to unrelated scheduling changes.
type noiseSource struct {
	mu   sync.Mutex
	seed int64
	// streams holds one rng per (engine, algorithm) pair, created lazily.
	streams map[string]*rand.Rand
	// sigma is the standard deviation of the log-normal noise.
	sigma float64
}

func newNoiseSource(seed int64) *noiseSource {
	return &noiseSource{seed: seed, streams: make(map[string]*rand.Rand), sigma: 0.08}
}

// streamSeed derives a per-stream seed by folding an FNV-64a hash of the
// stream key into the base seed.
func (n *noiseSource) streamSeed(key string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return n.seed ^ int64(h.Sum64())
}

// factor returns a multiplicative noise factor around 1.0, drawn from the
// (engine, algorithm) pair's own stream.
func (n *noiseSource) factor(engine, algorithm string) float64 {
	key := engine + "\x00" + algorithm
	n.mu.Lock()
	defer n.mu.Unlock()
	rng, ok := n.streams[key]
	if !ok {
		rng = rand.New(rand.NewSource(n.streamSeed(key)))
		n.streams[key] = rng
	}
	z := rng.NormFloat64()
	f := math.Exp(n.sigma*z - n.sigma*n.sigma/2)
	// Clamp pathological tails.
	if f < 0.5 {
		f = 0.5
	}
	if f > 2.0 {
		f = 2.0
	}
	return f
}
