package provision

import (
	"strings"
	"testing"

	"github.com/asap-project/ires/internal/engine"
)

// truthEstimator answers straight from engine ground truth — the ideal
// model — so tests isolate the GA search from model error.
type truthEstimator struct {
	env *engine.Environment
	eng string
	alg string
}

func (e truthEstimator) Estimate(_, target string, feats map[string]float64) (float64, bool) {
	res := engine.Resources{
		Nodes:     int(feats["nodes"]),
		CoresPerN: int(feats["cores"]),
		MemMBPerN: int(feats["memoryMB"]),
	}
	in := engine.Input{Records: int64(feats["records"]), Bytes: int64(feats["bytes"])}
	t, err := e.env.GroundTruthSec(e.eng, e.alg, in, res)
	if err != nil {
		return 0, false
	}
	switch target {
	case "execTime":
		return t, true
	case "cost":
		return t * res.CostRate(), true
	}
	return 0, false
}

func newProvisioner(t *testing.T) (*Provisioner, *engine.Environment) {
	t.Helper()
	env := engine.NewDefaultEnvironment(5)
	est := truthEstimator{env: env, eng: engine.EngineSpark, alg: engine.AlgTFIDF}
	p := New(est, engine.StandardCluster, 7)
	return p, env
}

func TestFrontShape(t *testing.T) {
	p, _ := newProvisioner(t)
	front, err := p.Front("tfidf_spark", 500_000, 500_000*5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 2 {
		t.Fatalf("front too small: %d", len(front))
	}
	// Front is sorted by time; cost must be non-increasing along it
	// (mutual non-domination).
	for i := 1; i < len(front); i++ {
		if front[i].EstTime < front[i-1].EstTime {
			t.Fatal("front not sorted by time")
		}
		if front[i].EstCost > front[i-1].EstCost+1e-9 {
			t.Fatalf("front not non-dominated: %+v then %+v", front[i-1], front[i])
		}
	}
}

// TestFig17Shape reproduces the paper's provisioning behaviour: IReS's
// MinTime pick achieves times close to max-resources while spending less
// than max resources for small inputs, and scales resources up as inputs
// grow.
func TestFig17Shape(t *testing.T) {
	p, env := newProvisioner(t)

	pickAt := func(docs int64) (Option, float64, float64) {
		best, _, err := p.Provision("tfidf_spark", docs, docs*5000, nil, MinTime)
		if err != nil {
			t.Fatal(err)
		}
		maxT, err := env.GroundTruthSec(engine.EngineSpark, engine.AlgTFIDF,
			engine.Input{Records: docs, Bytes: docs * 5000}, engine.StandardCluster)
		if err != nil {
			t.Fatal(err)
		}
		maxCost := maxT * engine.StandardCluster.CostRate()
		return best, maxT, maxCost
	}

	small, maxTsmall, maxCostSmall := pickAt(10_000)
	// Within 25% of the max-resources time...
	if small.EstTime > maxTsmall*1.25 {
		t.Errorf("small input: picked %.1fs vs max-resources %.1fs", small.EstTime, maxTsmall)
	}
	// ...but cheaper than max resources.
	if small.EstCost >= maxCostSmall {
		t.Errorf("small input: cost %.1f not below max-resources cost %.1f", small.EstCost, maxCostSmall)
	}

	big, _, _ := pickAt(10_000_000)
	if big.Res.TotalCores() < small.Res.TotalCores() {
		t.Errorf("provisioned cores shrank with input: %v -> %v", small.Res, big.Res)
	}
}

func TestPolicies(t *testing.T) {
	p, _ := newProvisioner(t)
	minT, front, err := p.Provision("x", 1_000_000, 5e9, nil, MinTime)
	if err != nil {
		t.Fatal(err)
	}
	minC, _, err := p.Provision("x", 1_000_000, 5e9, nil, MinCost)
	if err != nil {
		t.Fatal(err)
	}
	bal, _, err := p.Provision("x", 1_000_000, 5e9, nil, Balanced)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range front {
		if o.EstTime < minT.EstTime {
			t.Fatal("MinTime not minimal")
		}
		if o.EstCost < minC.EstCost {
			t.Fatal("MinCost not minimal")
		}
	}
	if bal.EstTime < minT.EstTime || bal.EstCost < minC.EstCost {
		t.Fatal("Balanced outside front envelope")
	}
}

func TestResourceBoundsRespected(t *testing.T) {
	p, _ := newProvisioner(t)
	front, err := p.Front("x", 100_000, 5e8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range front {
		if o.Res.Nodes < 1 || o.Res.Nodes > 16 ||
			o.Res.CoresPerN < 1 || o.Res.CoresPerN > 2 ||
			o.Res.MemMBPerN < 256 || o.Res.MemMBPerN > 3456 {
			t.Fatalf("out-of-bounds resources: %v", o.Res)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := (&Provisioner{}).Front("x", 1, 1, nil); err == nil {
		t.Fatal("nil estimator accepted")
	}
	p, _ := newProvisioner(t)
	p.Cluster = engine.Resources{}
	if _, err := p.Front("x", 1, 1, nil); err == nil || !strings.Contains(err.Error(), "cluster") {
		t.Fatalf("bad bounds accepted: %v", err)
	}
}

type infeasibleEstimator struct{}

func (infeasibleEstimator) Estimate(string, string, map[string]float64) (float64, bool) {
	return 0, false
}

func TestAllInfeasible(t *testing.T) {
	p := New(infeasibleEstimator{}, engine.StandardCluster, 1)
	if _, err := p.Front("x", 1, 1, nil); err == nil {
		t.Fatal("infeasible search should error")
	}
}
