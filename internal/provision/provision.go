// Package provision implements the IReS resource-provisioning module
// (D3.3 §2.2.4): it runs NSGA-II over the trained cost/performance models
// of an operator to find Pareto-optimal resource configurations (#nodes,
// cores, memory) and selects one according to the user policy.
package provision

import (
	"fmt"
	"math"
	"sort"

	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/nsga2"
)

// Estimator is the model-backed predictor (satisfied by
// *profiler.Profiler).
type Estimator interface {
	Estimate(opName, target string, feats map[string]float64) (float64, bool)
}

// Policy selects one configuration from the Pareto front.
type Policy int

const (
	// MinTime picks the fastest configuration regardless of cost.
	MinTime Policy = iota
	// MinCost picks the cheapest configuration regardless of time.
	MinCost
	// Balanced picks the knee point (minimal normalised time*cost product).
	Balanced
)

// Option is one Pareto-optimal resource choice.
type Option struct {
	Res     engine.Resources
	EstTime float64
	EstCost float64
}

// Provisioner searches resource configurations bounded by the cluster.
type Provisioner struct {
	Estimator Estimator
	// Cluster bounds the search: at most Cluster.Nodes containers of at
	// most Cluster.CoresPerN cores and Cluster.MemMBPerN MB each.
	Cluster engine.Resources
	// GA overrides the NSGA-II configuration; zero uses defaults.
	GA   nsga2.Config
	Seed int64
}

// New returns a provisioner over the standard cluster bounds.
func New(est Estimator, cluster engine.Resources, seed int64) *Provisioner {
	return &Provisioner{Estimator: est, Cluster: cluster, Seed: seed}
}

const infeasiblePenalty = 1e12

// Front computes the Pareto front of (time, cost) resource configurations
// for one operator at the given input scale.
func (p *Provisioner) Front(opName string, records, bytes int64, params map[string]float64) ([]Option, error) {
	if p.Estimator == nil {
		return nil, fmt.Errorf("provision: Estimator is required")
	}
	if err := p.Cluster.Validate(); err != nil {
		return nil, fmt.Errorf("provision: bad cluster bounds: %w", err)
	}
	evaluate := func(x []float64) []float64 {
		res := engine.Resources{Nodes: int(x[0]), CoresPerN: int(x[1]), MemMBPerN: int(x[2])}
		feats := map[string]float64{
			"records":  float64(records),
			"bytes":    float64(bytes),
			"nodes":    float64(res.Nodes),
			"cores":    float64(res.CoresPerN),
			"memoryMB": float64(res.MemMBPerN),
		}
		for k, v := range params {
			feats[k] = v
		}
		t, ok1 := p.Estimator.Estimate(opName, "execTime", feats)
		c, ok2 := p.Estimator.Estimate(opName, "cost", feats)
		if !ok1 || !ok2 {
			return []float64{infeasiblePenalty, infeasiblePenalty}
		}
		return []float64{t, c}
	}
	problem := nsga2.Problem{
		Vars: []nsga2.Variable{
			{Min: 1, Max: float64(p.Cluster.Nodes), Integer: true},
			{Min: 1, Max: float64(p.Cluster.CoresPerN), Integer: true},
			{Min: 256, Max: float64(p.Cluster.MemMBPerN), Integer: true},
		},
		Objectives: 2,
		Evaluate:   evaluate,
	}
	ga := p.GA
	if ga.Seed == 0 {
		ga.Seed = p.Seed
	}
	front, err := nsga2.Run(problem, ga)
	if err != nil {
		return nil, err
	}
	var out []Option
	for _, ind := range front {
		if ind.F[0] >= infeasiblePenalty {
			continue
		}
		out = append(out, Option{
			Res:     engine.Resources{Nodes: int(ind.X[0]), CoresPerN: int(ind.X[1]), MemMBPerN: int(ind.X[2])},
			EstTime: ind.F[0],
			EstCost: ind.F[1],
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("provision: no feasible configuration for %s at %d records", opName, records)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EstTime < out[j].EstTime })
	return out, nil
}

// Provision picks one configuration per policy from the Pareto front.
func (p *Provisioner) Provision(opName string, records, bytes int64, params map[string]float64, policy Policy) (Option, []Option, error) {
	front, err := p.Front(opName, records, bytes, params)
	if err != nil {
		return Option{}, nil, err
	}
	return pick(front, policy), front, nil
}

func pick(front []Option, policy Policy) Option {
	best := front[0]
	switch policy {
	case MinTime:
		for _, o := range front {
			if o.EstTime < best.EstTime {
				best = o
			}
		}
	case MinCost:
		for _, o := range front {
			if o.EstCost < best.EstCost {
				best = o
			}
		}
	case Balanced:
		// Normalise both objectives over the front, minimise the product.
		minT, maxT := math.Inf(1), math.Inf(-1)
		minC, maxC := math.Inf(1), math.Inf(-1)
		for _, o := range front {
			minT, maxT = math.Min(minT, o.EstTime), math.Max(maxT, o.EstTime)
			minC, maxC = math.Min(minC, o.EstCost), math.Max(maxC, o.EstCost)
		}
		spanT, spanC := maxT-minT, maxC-minC
		if spanT == 0 {
			spanT = 1
		}
		if spanC == 0 {
			spanC = 1
		}
		bestScore := math.Inf(1)
		for _, o := range front {
			nt := (o.EstTime - minT) / spanT
			nc := (o.EstCost - minC) / spanC
			score := nt + nc
			if score < bestScore {
				bestScore = score
				best = o
			}
		}
	}
	return best
}
