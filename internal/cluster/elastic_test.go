package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/asap-project/ires/internal/vtime"
)

// Elastic lease mechanics: grow extends first-fit in stable order, shrink
// frees only idle nodes, revoke force-releases stragglers, and every
// operation is invariant-preserving.
func TestGrowShrinkRevoke(t *testing.T) {
	c := New(vtime.NewClock(), 8, 4, 8192)
	r, err := c.Reserve(2)
	if err != nil {
		t.Fatal(err)
	}
	added, err := c.GrowReservation(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 3 || r.Size() != 5 {
		t.Fatalf("grow added %v, size %d; want 3 added, size 5", added, r.Size())
	}
	// Grow past capacity is atomic: nothing changes.
	if _, err := c.GrowReservation(r, 4); !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("overgrow err = %v", err)
	}
	if r.Size() != 5 {
		t.Fatalf("failed grow mutated the lease: size %d", r.Size())
	}

	// Pin one node with a live container: shrink must route around it.
	ctrs, err := c.AllocateIn(r, 1, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	busyNode := ctrs[0].NodeName
	removed, err := c.ShrinkReservation(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range removed {
		if name == busyNode {
			t.Fatalf("shrink released busy node %s", busyNode)
		}
	}
	if r.Size() != 1 {
		t.Fatalf("size after shrink = %d, want 1 (only the busy node pinned)", r.Size())
	}
	if got := r.Nodes(); len(got) != 1 || got[0] != busyNode {
		t.Fatalf("lease kept %v, want just the busy node %s", got, busyNode)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Revoke force-releases the remaining container and frees the node.
	if dropped := c.RevokeReservation(r); dropped != 1 {
		t.Fatalf("revoke dropped %d containers, want 1", dropped)
	}
	if !r.Released() || r.Size() != 0 {
		t.Fatalf("lease not fully revoked: released=%v size=%d", r.Released(), r.Size())
	}
	if got := c.UnreservedHealthy(); got != 8 {
		t.Fatalf("unreserved after revoke = %d, want 8", got)
	}
	// Idempotent terminal ops.
	if dropped := c.RevokeReservation(r); dropped != 0 {
		t.Fatalf("second revoke dropped %d", dropped)
	}
	c.ReleaseReservation(r)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Elastic ops on a dead lease fail cleanly.
	if _, err := c.GrowReservation(r, 1); err == nil {
		t.Fatal("grow of released lease succeeded")
	}
	if _, err := c.ShrinkReservation(r, 1); err == nil {
		t.Fatal("shrink of released lease succeeded")
	}
}

// A shrink that finds every above-target node busy keeps them all.
func TestShrinkKeepsBusyNodes(t *testing.T) {
	c := New(vtime.NewClock(), 4, 2, 4096)
	r, err := c.Reserve(3)
	if err != nil {
		t.Fatal(err)
	}
	// One container per leased node: everything is pinned.
	if _, err := c.AllocateIn(r, 3, 1, 512); err != nil {
		t.Fatal(err)
	}
	removed, err := c.ShrinkReservation(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 || r.Size() != 3 {
		t.Fatalf("shrink of fully busy lease removed %v (size %d)", removed, r.Size())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: a randomized storm of reserve/grow/shrink/revoke/allocate/free
// operations (fixed seed) preserves the cluster invariants after every
// single step, and total accounting returns to zero once everything is
// released.
func TestElasticStormInvariants(t *testing.T) {
	const nodes = 12
	rng := rand.New(rand.NewSource(7))
	c := New(vtime.NewClock(), nodes, 4, 8192)

	type holding struct {
		res  *Reservation
		ctrs []*Container
	}
	var held []*holding

	check := func(step int, op string) {
		t.Helper()
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("step %d (%s): %v", step, op, err)
		}
	}

	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(6); op {
		case 0: // reserve
			n := 1 + rng.Intn(4)
			if r, err := c.Reserve(n); err == nil {
				held = append(held, &holding{res: r})
			}
			check(step, "reserve")
		case 1: // grow
			if len(held) == 0 {
				continue
			}
			h := held[rng.Intn(len(held))]
			_, _ = c.GrowReservation(h.res, 1+rng.Intn(3))
			check(step, "grow")
		case 2: // shrink
			if len(held) == 0 {
				continue
			}
			h := held[rng.Intn(len(held))]
			_, _ = c.ShrinkReservation(h.res, 1+rng.Intn(3))
			check(step, "shrink")
		case 3: // allocate containers inside a lease
			if len(held) == 0 {
				continue
			}
			h := held[rng.Intn(len(held))]
			if h.res.Released() {
				continue
			}
			if ctrs, err := c.AllocateIn(h.res, 1+rng.Intn(2), 1, 512); err == nil {
				h.ctrs = append(h.ctrs, ctrs...)
			}
			check(step, "allocate")
		case 4: // free containers
			if len(held) == 0 {
				continue
			}
			h := held[rng.Intn(len(held))]
			c.ReleaseAll(h.ctrs)
			h.ctrs = nil
			check(step, "free")
		case 5: // revoke or release
			if len(held) == 0 {
				continue
			}
			i := rng.Intn(len(held))
			h := held[i]
			if rng.Intn(2) == 0 {
				c.RevokeReservation(h.res) // force-drops its containers
			} else {
				c.ReleaseAll(h.ctrs)
				c.ReleaseReservation(h.res)
			}
			held = append(held[:i], held[i+1:]...)
			check(step, "revoke/release")
		}
	}

	for _, h := range held {
		c.RevokeReservation(h.res)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := c.ReservedNodes(); got != 0 {
		t.Fatalf("%d nodes still reserved after the storm", got)
	}
	if got := c.LiveContainers(); got != 0 {
		t.Fatalf("%d containers still live after the storm", got)
	}
	if got := c.UnreservedHealthy(); got != nodes {
		t.Fatalf("unreserved = %d, want %d", got, nodes)
	}
}

// Slice lease mechanics: several slice leases share a node, AllocateIn is
// confined to the slice, ResizeSlice grows and shrinks per dimension, and
// releasing restores the exact pre-grant free counters.
func TestSliceReserveResizeRelease(t *testing.T) {
	c := New(vtime.NewClock(), 4, 8, 16384)

	preFree := c.UnreservedHealthy()
	r1, err := c.ReserveSlices(2, 3, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if sc, sm := r1.SliceDims(); sc != 3 || sm != 4096 {
		t.Fatalf("slice dims (%d,%d), want (3,4096)", sc, sm)
	}
	// A second slice lease can co-locate on the same nodes.
	r2, err := c.ReserveSlices(4, 3, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if cores, mem := c.ReservedSlices(); cores != 2*3+4*3 || mem != 2*4096+4*4096 {
		t.Fatalf("reserved slices (%d,%d)", cores, mem)
	}
	// Whole-node reservation must route around sliced nodes; with all four
	// nodes carrying slices it fails outright.
	if _, err := c.Reserve(1); !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("whole-node reserve on sliced cluster: %v", err)
	}

	// AllocateIn draws only from the slice: 3 cores fit, 4 don't.
	if _, err := c.AllocateIn(r1, 1, 4, 512); !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("over-slice cores allocation: %v", err)
	}
	ctrs, err := c.AllocateIn(r1, 2, 3, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctrs) != 2 {
		t.Fatalf("allocated %d containers, want 2", len(ctrs))
	}
	// The slice is now full on both lease nodes.
	if _, err := c.AllocateIn(r1, 1, 1, 512); !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("allocation into a full slice: %v", err)
	}

	// Grow the memory dimension, shrink cores to current usage.
	if err := c.ResizeSlice(r1, 3, 6144); err != nil {
		t.Fatal(err)
	}
	// Shrinking below live usage must fail atomically.
	if err := c.ResizeSlice(r1, 2, 6144); !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("shrink below usage: %v", err)
	}
	// Growing cores past physical headroom fails: node has 8 cores,
	// r1 3 + r2 3 leaves 2.
	if err := c.ResizeSlice(r1, 6, 6144); !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("grow past headroom: %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Node-count grow/shrink applies to slice leases too.
	added, err := c.GrowReservation(r1, 2)
	if err != nil || len(added) != 2 {
		t.Fatalf("slice grow: %v %v", added, err)
	}
	if removed, err := c.ShrinkReservation(r1, 2); err != nil || len(removed) != 2 {
		t.Fatalf("slice shrink: %v %v", removed, err)
	}

	c.ReleaseAll(ctrs)
	c.ReleaseReservation(r1)
	c.ReleaseReservation(r2)
	if cores, mem := c.ReservedSlices(); cores != 0 || mem != 0 {
		t.Fatalf("slices outstanding after release: (%d,%d)", cores, mem)
	}
	if got := c.UnreservedHealthy(); got != preFree {
		t.Fatalf("unreserved = %d, want pre-grant %d", got, preFree)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: a 2000-step randomized storm of multi-dimensional slice
// operations on an overcommitted cluster keeps every invariant, never lets
// summed slice grants exceed node capacity x the overcommit ratio, and
// returns the cluster to its exact pre-grant free-counter state once
// everything is released.
func TestElasticSliceStormInvariants(t *testing.T) {
	const (
		nodes      = 8
		coresPerN  = 8
		memPerN    = 16384
		overcommit = 1.25
	)
	rng := rand.New(rand.NewSource(11))
	c := New(vtime.NewClock(), nodes, coresPerN, memPerN)
	if err := c.SetMemOvercommit(overcommit); err != nil {
		t.Fatal(err)
	}
	memCap := int(float64(memPerN) * overcommit)

	type holding struct {
		res  *Reservation
		ctrs []*Container
	}
	var held []*holding

	type freeState struct {
		unreserved, reservedNodes, sliceCores, sliceMem, live int
	}
	snapshot := func() freeState {
		sc, sm := c.ReservedSlices()
		return freeState{c.UnreservedHealthy(), c.ReservedNodes(), sc, sm, c.LiveContainers()}
	}
	baseline := snapshot()

	check := func(step int, op string) {
		t.Helper()
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("step %d (%s): %v", step, op, err)
		}
		// Recount slice grants per node from the held set: capacity x
		// overcommit bounds the sum in each dimension.
		sumCores := make(map[string]int)
		sumMem := make(map[string]int)
		for _, h := range held {
			sc, sm := h.res.SliceDims()
			if sc == 0 {
				continue
			}
			for _, name := range h.res.Nodes() {
				sumCores[name] += sc
				sumMem[name] += sm
			}
		}
		for name, sc := range sumCores {
			if sc > coresPerN {
				t.Fatalf("step %d (%s): node %s slice cores %d > capacity %d", step, op, name, sc, coresPerN)
			}
			if sumMem[name] > memCap {
				t.Fatalf("step %d (%s): node %s slice mem %d > capacity x overcommit %d", step, op, name, sumMem[name], memCap)
			}
		}
	}

	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(8); op {
		case 0: // reserve slices
			n := 1 + rng.Intn(4)
			sc := 1 + rng.Intn(4)
			sm := 1024 * (1 + rng.Intn(8))
			if r, err := c.ReserveSlices(n, sc, sm); err == nil {
				held = append(held, &holding{res: r})
			}
			check(step, "reserve-slices")
		case 1: // grow node count
			if len(held) == 0 {
				continue
			}
			h := held[rng.Intn(len(held))]
			_, _ = c.GrowReservation(h.res, 1+rng.Intn(3))
			check(step, "grow")
		case 2: // shrink node count
			if len(held) == 0 {
				continue
			}
			h := held[rng.Intn(len(held))]
			_, _ = c.ShrinkReservation(h.res, rng.Intn(3))
			check(step, "shrink")
		case 3: // resize per dimension
			if len(held) == 0 {
				continue
			}
			h := held[rng.Intn(len(held))]
			sc := 1 + rng.Intn(6)
			sm := 1024 * (1 + rng.Intn(12))
			_ = c.ResizeSlice(h.res, sc, sm)
			check(step, "resize")
		case 4: // allocate inside the slice
			if len(held) == 0 {
				continue
			}
			h := held[rng.Intn(len(held))]
			if h.res.Released() {
				continue
			}
			if ctrs, err := c.AllocateIn(h.res, 1+rng.Intn(2), 1, 512); err == nil {
				h.ctrs = append(h.ctrs, ctrs...)
			}
			check(step, "allocate")
		case 5: // free containers
			if len(held) == 0 {
				continue
			}
			h := held[rng.Intn(len(held))]
			c.ReleaseAll(h.ctrs)
			h.ctrs = nil
			check(step, "free")
		case 6: // revoke or release
			if len(held) == 0 {
				continue
			}
			i := rng.Intn(len(held))
			h := held[i]
			if rng.Intn(2) == 0 {
				c.RevokeReservation(h.res)
			} else {
				c.ReleaseAll(h.ctrs)
				c.ReleaseReservation(h.res)
			}
			held = append(held[:i], held[i+1:]...)
			check(step, "revoke/release")
		case 7: // solo grant/release cycle: exact free-counter restoration
			pre := snapshot()
			r, err := c.ReserveSlices(1+rng.Intn(2), 1+rng.Intn(3), 2048)
			if err != nil {
				continue
			}
			ctrs, _ := c.AllocateIn(r, 1, 1, 512)
			c.ReleaseAll(ctrs)
			c.ReleaseReservation(r)
			if got := snapshot(); got != pre {
				t.Fatalf("step %d: free counters %+v after release, want pre-grant %+v", step, got, pre)
			}
			check(step, "cycle")
		}
	}

	for _, h := range held {
		c.RevokeReservation(h.res)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := snapshot(); got != baseline {
		t.Fatalf("final free counters %+v, want baseline %+v", got, baseline)
	}
}

// OOM mechanics: on an overcommitted node, an allocation that pushes actual
// usage past physical memory consults the killer hook and invalidates the
// largest live container; the loss is observable through Container.Lost and
// the fault.oomkill event.
func TestOOMKillOnOversubscribedNode(t *testing.T) {
	clock := vtime.NewClock()
	c := New(clock, 1, 8, 16384)
	if err := c.SetMemOvercommit(1.5); err != nil {
		t.Fatal(err)
	}
	// Ratio below 1 is nonsense.
	if err := c.SetMemOvercommit(0.5); err == nil {
		t.Fatal("SetMemOvercommit(0.5) accepted")
	}

	var consulted []int
	c.SetOOMKiller(func(node string, overMB int) bool {
		consulted = append(consulted, overMB)
		return true
	})

	// Two slice leases of 12288MB each fit under 16384*1.5 = 24576 but
	// exceed physical 16384 when both actually allocate.
	r1, err := c.ReserveSlices(1, 2, 12288)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.ReserveSlices(1, 2, 12288)
	if err != nil {
		t.Fatal(err)
	}
	small, err := c.AllocateIn(r1, 1, 1, 6144)
	if err != nil {
		t.Fatal(err)
	}
	big, err := c.AllocateIn(r2, 1, 1, 12288)
	if err != nil {
		t.Fatal(err)
	}
	// 6144 + 12288 = 18432 > 16384: the sweep kills the largest container
	// (the 12288MB one just granted) and leaves the node within physical.
	if len(consulted) == 0 {
		t.Fatal("OOM killer never consulted")
	}
	if !big[0].Lost() {
		t.Fatal("largest container survived the OOM sweep")
	}
	if small[0].Lost() {
		t.Fatal("small container was killed instead of the largest")
	}
	if got := c.LiveContainers(); got != 1 {
		t.Fatalf("live containers = %d, want 1", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// A declined kill leaves the node oversubscribed but alive.
	c.SetOOMKiller(func(string, int) bool { return false })
	big2, err := c.AllocateIn(r2, 1, 1, 12288)
	if err != nil {
		t.Fatal(err)
	}
	if big2[0].Lost() {
		t.Fatal("container killed although the hook declined")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	c.ReleaseAll(small)
	c.ReleaseAll(big2)
	c.ReleaseReservation(r1)
	c.ReleaseReservation(r2)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
