package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/asap-project/ires/internal/vtime"
)

// Elastic lease mechanics: grow extends first-fit in stable order, shrink
// frees only idle nodes, revoke force-releases stragglers, and every
// operation is invariant-preserving.
func TestGrowShrinkRevoke(t *testing.T) {
	c := New(vtime.NewClock(), 8, 4, 8192)
	r, err := c.Reserve(2)
	if err != nil {
		t.Fatal(err)
	}
	added, err := c.GrowReservation(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 3 || r.Size() != 5 {
		t.Fatalf("grow added %v, size %d; want 3 added, size 5", added, r.Size())
	}
	// Grow past capacity is atomic: nothing changes.
	if _, err := c.GrowReservation(r, 4); !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("overgrow err = %v", err)
	}
	if r.Size() != 5 {
		t.Fatalf("failed grow mutated the lease: size %d", r.Size())
	}

	// Pin one node with a live container: shrink must route around it.
	ctrs, err := c.AllocateIn(r, 1, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	busyNode := ctrs[0].NodeName
	removed, err := c.ShrinkReservation(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range removed {
		if name == busyNode {
			t.Fatalf("shrink released busy node %s", busyNode)
		}
	}
	if r.Size() != 1 {
		t.Fatalf("size after shrink = %d, want 1 (only the busy node pinned)", r.Size())
	}
	if got := r.Nodes(); len(got) != 1 || got[0] != busyNode {
		t.Fatalf("lease kept %v, want just the busy node %s", got, busyNode)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Revoke force-releases the remaining container and frees the node.
	if dropped := c.RevokeReservation(r); dropped != 1 {
		t.Fatalf("revoke dropped %d containers, want 1", dropped)
	}
	if !r.Released() || r.Size() != 0 {
		t.Fatalf("lease not fully revoked: released=%v size=%d", r.Released(), r.Size())
	}
	if got := c.UnreservedHealthy(); got != 8 {
		t.Fatalf("unreserved after revoke = %d, want 8", got)
	}
	// Idempotent terminal ops.
	if dropped := c.RevokeReservation(r); dropped != 0 {
		t.Fatalf("second revoke dropped %d", dropped)
	}
	c.ReleaseReservation(r)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Elastic ops on a dead lease fail cleanly.
	if _, err := c.GrowReservation(r, 1); err == nil {
		t.Fatal("grow of released lease succeeded")
	}
	if _, err := c.ShrinkReservation(r, 1); err == nil {
		t.Fatal("shrink of released lease succeeded")
	}
}

// A shrink that finds every above-target node busy keeps them all.
func TestShrinkKeepsBusyNodes(t *testing.T) {
	c := New(vtime.NewClock(), 4, 2, 4096)
	r, err := c.Reserve(3)
	if err != nil {
		t.Fatal(err)
	}
	// One container per leased node: everything is pinned.
	if _, err := c.AllocateIn(r, 3, 1, 512); err != nil {
		t.Fatal(err)
	}
	removed, err := c.ShrinkReservation(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 || r.Size() != 3 {
		t.Fatalf("shrink of fully busy lease removed %v (size %d)", removed, r.Size())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: a randomized storm of reserve/grow/shrink/revoke/allocate/free
// operations (fixed seed) preserves the cluster invariants after every
// single step, and total accounting returns to zero once everything is
// released.
func TestElasticStormInvariants(t *testing.T) {
	const nodes = 12
	rng := rand.New(rand.NewSource(7))
	c := New(vtime.NewClock(), nodes, 4, 8192)

	type holding struct {
		res  *Reservation
		ctrs []*Container
	}
	var held []*holding

	check := func(step int, op string) {
		t.Helper()
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("step %d (%s): %v", step, op, err)
		}
	}

	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(6); op {
		case 0: // reserve
			n := 1 + rng.Intn(4)
			if r, err := c.Reserve(n); err == nil {
				held = append(held, &holding{res: r})
			}
			check(step, "reserve")
		case 1: // grow
			if len(held) == 0 {
				continue
			}
			h := held[rng.Intn(len(held))]
			_, _ = c.GrowReservation(h.res, 1+rng.Intn(3))
			check(step, "grow")
		case 2: // shrink
			if len(held) == 0 {
				continue
			}
			h := held[rng.Intn(len(held))]
			_, _ = c.ShrinkReservation(h.res, 1+rng.Intn(3))
			check(step, "shrink")
		case 3: // allocate containers inside a lease
			if len(held) == 0 {
				continue
			}
			h := held[rng.Intn(len(held))]
			if h.res.Released() {
				continue
			}
			if ctrs, err := c.AllocateIn(h.res, 1+rng.Intn(2), 1, 512); err == nil {
				h.ctrs = append(h.ctrs, ctrs...)
			}
			check(step, "allocate")
		case 4: // free containers
			if len(held) == 0 {
				continue
			}
			h := held[rng.Intn(len(held))]
			c.ReleaseAll(h.ctrs)
			h.ctrs = nil
			check(step, "free")
		case 5: // revoke or release
			if len(held) == 0 {
				continue
			}
			i := rng.Intn(len(held))
			h := held[i]
			if rng.Intn(2) == 0 {
				c.RevokeReservation(h.res) // force-drops its containers
			} else {
				c.ReleaseAll(h.ctrs)
				c.ReleaseReservation(h.res)
			}
			held = append(held[:i], held[i+1:]...)
			check(step, "revoke/release")
		}
	}

	for _, h := range held {
		c.RevokeReservation(h.res)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := c.ReservedNodes(); got != 0 {
		t.Fatalf("%d nodes still reserved after the storm", got)
	}
	if got := c.LiveContainers(); got != 0 {
		t.Fatalf("%d containers still live after the storm", got)
	}
	if got := c.UnreservedHealthy(); got != nodes {
		t.Fatalf("unreserved = %d, want %d", got, nodes)
	}
}
