package cluster

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/vtime"
)

// collectTracer records event types in emission order (test helper).
type collectTracer struct {
	mu  sync.Mutex
	evs []trace.Event
}

func (ct *collectTracer) Emit(ev trace.Event) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.evs = append(ct.evs, ev)
}

func (ct *collectTracer) types() []trace.EventType {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	out := make([]trace.EventType, len(ct.evs))
	for i, ev := range ct.evs {
		out[i] = ev.Type
	}
	return out
}

// A node crash behind a partition is silent — no events, no desired-state
// invalidation — until the partition heals and the next reconcile round
// observes a fresh report and detects the death.
func TestSilentDeathDetectedAfterHeal(t *testing.T) {
	clock := vtime.NewClock()
	c := New(clock, 2, 4, 8192)
	ct := &collectTracer{}
	c.SetTracer(ct)

	ctrs, err := c.Allocate(2, 2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	var onNode1 *Container
	for _, ctr := range ctrs {
		if ctr.NodeName == "node1" {
			onNode1 = ctr
		}
	}
	if onNode1 == nil {
		t.Fatal("no container landed on node1")
	}

	if err := c.PartitionNode("node1"); err != nil {
		t.Fatal(err)
	}
	if err := c.FailNode("node1", 0); err != nil {
		t.Fatal(err)
	}
	// Silent: the control plane still believes in the node and its work.
	if onNode1.Lost() {
		t.Fatal("silent death invalidated a container before detection")
	}
	if !c.Nodes()[1].Healthy() {
		t.Fatal("silent death flipped believed health")
	}
	for _, typ := range ct.types() {
		if typ == trace.EvNodeCrash {
			t.Fatal("silent death emitted node.crash")
		}
	}

	// Reconcile tolerates the stale report (drift, not death).
	stats := c.Reconcile()
	if stats.Stale != 1 || stats.Deaths != 0 {
		t.Fatalf("reconcile during partition = %+v", stats)
	}
	if c.DriftObserved() != 1 {
		t.Fatalf("DriftObserved = %d", c.DriftObserved())
	}
	if onNode1.Lost() {
		t.Fatal("drift tolerance invalidated a container")
	}

	// Heal: the next round sees the fresh (dead) report and detects.
	if err := c.HealPartition("node1"); err != nil {
		t.Fatal(err)
	}
	stats = c.Reconcile()
	if stats.Deaths != 1 || stats.Lost != 1 {
		t.Fatalf("reconcile after heal = %+v", stats)
	}
	if !onNode1.Lost() {
		t.Fatal("detected death did not invalidate the container")
	}
	if c.DeathsDetected() != 1 {
		t.Fatalf("DeathsDetected = %d", c.DeathsDetected())
	}
	sawDrift, sawCrash := false, false
	for _, typ := range ct.types() {
		switch typ {
		case trace.EvAgentDrift:
			sawDrift = true
		case trace.EvNodeCrash:
			sawCrash = true
		}
	}
	if !sawDrift || !sawCrash {
		t.Fatalf("events %v missing agent.drift or node.crash", ct.types())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d := c.DesiredActualDiff(); d != 0 {
		t.Fatalf("DesiredActualDiff after convergence = %d", d)
	}
}

// With MaxStaleness armed, the reconciler declares a too-stale node dead
// without waiting for the heal; when the agent turns out to have survived,
// the post-heal round restores belief and fences the zombie containers.
func TestStalenessBoundAndZombieFencing(t *testing.T) {
	clock := vtime.NewClock()
	c := New(clock, 2, 4, 8192)
	ct := &collectTracer{}
	c.SetTracer(ct)
	c.SetMaxStaleness(30 * time.Second)

	ctrs, err := c.Allocate(2, 2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PartitionNode("node1"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Second)
	if stats := c.Reconcile(); stats.Deaths != 0 {
		t.Fatalf("death declared below the staleness bound: %+v", stats)
	}
	clock.Advance(25 * time.Second)
	stats := c.Reconcile()
	if stats.Deaths != 1 || stats.Lost != 1 {
		t.Fatalf("staleness bound did not declare death: %+v", stats)
	}
	if c.Nodes()[1].Healthy() {
		t.Fatal("declared-dead node still believed healthy")
	}
	// The agent is actually alive and still hosts its (now unwanted)
	// container: desired and actual genuinely diverge.
	if c.DesiredActualDiff() == 0 {
		t.Fatal("declaration left no divergence to fence")
	}
	// Re-reconciling while still stale must not declare again.
	if stats := c.Reconcile(); stats.Deaths != 0 {
		t.Fatalf("repeated declaration: %+v", stats)
	}

	if err := c.HealPartition("node1"); err != nil {
		t.Fatal(err)
	}
	stats = c.Reconcile()
	if stats.Restores != 1 || stats.Fenced != 1 {
		t.Fatalf("post-heal recovery = %+v", stats)
	}
	sawRestore := false
	for _, typ := range ct.types() {
		if typ == trace.EvNodeRestore {
			sawRestore = true
		}
	}
	if !sawRestore {
		t.Fatal("recovery did not emit node.restore")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d := c.DesiredActualDiff(); d != 0 {
		t.Fatalf("DesiredActualDiff after fencing = %d", d)
	}
	// Capacity on the recovered node is allocatable again.
	if _, err := c.Allocate(2, 2, 2048); err != nil {
		t.Fatal(err)
	}
	_ = ctrs
}

// A reconcile round over a quiescent, partition-free cluster observes
// nothing: no events, no deaths, desired == actual. This is the property
// that keeps golden traces of scenarios that never reconcile byte-identical.
func TestReconcileQuiescentNoop(t *testing.T) {
	clock := vtime.NewClock()
	c := New(clock, 4, 8, 16384)
	ctrs, err := c.Allocate(6, 2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	c.Reconcile() // absorbs the allocation news
	ct := &collectTracer{}
	c.SetTracer(ct)
	stats := c.Reconcile()
	if stats.Deaths != 0 || stats.Stale != 0 || stats.Fenced != 0 {
		t.Fatalf("quiescent reconcile = %+v", stats)
	}
	if len(ct.types()) != 0 {
		t.Fatalf("quiescent reconcile emitted %v", ct.types())
	}
	c.ReleaseAll(ctrs)
}

// StartReconciler drives rounds on the virtual clock.
func TestStartReconciler(t *testing.T) {
	clock := vtime.NewClock()
	c := New(clock, 2, 4, 8192)
	c.StartReconciler(10 * time.Second)
	c.StartReconciler(10 * time.Second) // idempotent

	if _, err := c.Allocate(1, 1, 512); err != nil {
		t.Fatal(err)
	}
	if err := c.PartitionNode("node1"); err != nil {
		t.Fatal(err)
	}
	if err := c.FailNode("node1", 0); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Second)
	if c.DriftObserved() == 0 {
		t.Fatal("scheduled reconcile did not observe drift")
	}
	if err := c.HealPartition("node1"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Second)
	if c.DeathsDetected() != 1 {
		t.Fatalf("DeathsDetected = %d", c.DeathsDetected())
	}
}

// Convergence storm: randomized allocate/release/partition/heal/fail/
// restore/reconcile sequences across seeds and GOMAXPROCS settings. The
// invariants must hold after every step, and once all partitions heal and a
// reconcile round runs, desired must equal actual exactly — and a second
// round must be a strict no-op.
func TestReconcilerConvergenceStorm(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		for _, procs := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed=%d/procs=%d", seed, procs), func(t *testing.T) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				r := rand.New(rand.NewSource(seed))
				clock := vtime.NewClock()
				const nodes = 6
				c := New(clock, nodes, 8, 16384)
				c.SetMaxStaleness(45 * time.Second)

				name := func() string { return fmt.Sprintf("node%d", r.Intn(nodes)) }
				var live []*Container
				sweep := func() {
					kept := live[:0]
					for _, ctr := range live {
						if !ctr.Lost() {
							kept = append(kept, ctr)
						}
					}
					live = kept
				}
				for i := 0; i < 300; i++ {
					switch r.Intn(10) {
					case 0, 1, 2:
						if ctrs, err := c.Allocate(r.Intn(3)+1, r.Intn(3)+1, (r.Intn(4)+1)*512); err == nil {
							live = append(live, ctrs...)
						}
					case 3:
						sweep()
						if len(live) > 0 {
							j := r.Intn(len(live))
							c.Release(live[j])
							live = append(live[:j], live[j+1:]...)
						}
					case 4:
						_ = c.PartitionNode(name())
					case 5:
						_ = c.HealPartition(name())
					case 6:
						_ = c.FailNode(name(), 0)
					case 7:
						_ = c.RestoreNode(name())
					case 8:
						c.PutCheckpoint(fmt.Sprintf("ckpt/%d", r.Intn(8)), "alg", r.Intn(5)+1, 10, []string{name()}, r.Intn(2) == 0)
					case 9:
						c.Reconcile()
						clock.Advance(time.Duration(r.Intn(20)+1) * time.Second)
					}
					if err := c.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", i, err)
					}
				}

				// Quiesce: heal every partition, restore every dead node,
				// reconcile, and demand exact convergence.
				for i := 0; i < nodes; i++ {
					_ = c.HealPartition(fmt.Sprintf("node%d", i))
				}
				c.Reconcile()
				for _, n := range c.Nodes() {
					if !n.Healthy() {
						if err := c.RestoreNode(n.Name); err != nil {
							t.Fatal(err)
						}
					}
				}
				c.Reconcile()
				if err := c.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if d := c.DesiredActualDiff(); d != 0 {
					t.Fatalf("DesiredActualDiff after quiescence = %d", d)
				}
				if stats := c.Reconcile(); stats.Deaths != 0 || stats.Fenced != 0 || stats.Stale != 0 || stats.Restores != 0 {
					t.Fatalf("post-quiescence reconcile not a no-op: %+v", stats)
				}
			})
		}
	}
}

// Concurrent storm: allocators, partition flappers, failure injectors and
// reconcile rounds hammer the cluster from separate goroutines (run under
// -race in CI). Afterwards the cluster must still quiesce to desired ==
// actual.
func TestReconcilerConcurrentStorm(t *testing.T) {
	const nodes = 6
	clock := vtime.NewClock()
	c := New(clock, nodes, 8, 16384)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			name := func() string { return fmt.Sprintf("node%d", r.Intn(nodes)) }
			for i := 0; i < 150; i++ {
				switch r.Intn(6) {
				case 0:
					if ctrs, err := c.Allocate(r.Intn(2)+1, 1, 512); err == nil {
						c.ReleaseAll(ctrs)
					}
				case 1:
					_ = c.PartitionNode(name())
				case 2:
					_ = c.HealPartition(name())
				case 3:
					_ = c.FailNode(name(), 0)
					_ = c.RestoreNode(name())
				case 4:
					c.Reconcile()
				case 5:
					c.AgentReports()
					c.DesiredActualDiff()
				}
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < nodes; i++ {
		_ = c.HealPartition(fmt.Sprintf("node%d", i))
	}
	c.Reconcile()
	for _, n := range c.Nodes() {
		if !n.Healthy() {
			if err := c.RestoreNode(n.Name); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Reconcile()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d := c.DesiredActualDiff(); d != 0 {
		t.Fatalf("DesiredActualDiff after concurrent storm = %d", d)
	}
}
