package cluster

import (
	"errors"
	"testing"

	"github.com/asap-project/ires/internal/vtime"
)

// The reservation-misuse sentinels must be classifiable with errors.Is —
// callers (the executor's launch path above all) branch on the typed
// errors, never on message substrings.
func TestTypedReservationErrors(t *testing.T) {
	clock := vtime.NewClock()
	c := New(clock, 2, 8, 16384)
	other := New(clock, 2, 8, 16384)

	if _, err := c.GrowReservation(nil, 1); !errors.Is(err, ErrNilReservation) {
		t.Fatalf("grow(nil) = %v, want ErrNilReservation", err)
	}
	if err := c.ResizeSlice(nil, 1, 1); !errors.Is(err, ErrNilReservation) {
		t.Fatalf("resize(nil) = %v, want ErrNilReservation", err)
	}
	if _, err := c.ShrinkReservation(nil, 1); !errors.Is(err, ErrNilReservation) {
		t.Fatalf("shrink(nil) = %v, want ErrNilReservation", err)
	}

	foreign, err := other.Reserve(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GrowReservation(foreign, 1); !errors.Is(err, ErrForeignReservation) {
		t.Fatalf("grow(foreign) = %v, want ErrForeignReservation", err)
	}
	if err := c.ResizeSlice(foreign, 1, 1); !errors.Is(err, ErrForeignReservation) {
		t.Fatalf("resize(foreign) = %v, want ErrForeignReservation", err)
	}
	if _, err := c.ShrinkReservation(foreign, 1); !errors.Is(err, ErrForeignReservation) {
		t.Fatalf("shrink(foreign) = %v, want ErrForeignReservation", err)
	}
	if _, err := c.AllocateIn(foreign, 1, 1, 1); !errors.Is(err, ErrForeignReservation) {
		t.Fatalf("AllocateIn(foreign) = %v, want ErrForeignReservation", err)
	}

	whole, err := c.Reserve(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ResizeSlice(whole, 1, 1); !errors.Is(err, ErrWholeNodeReservation) {
		t.Fatalf("resize(whole-node) = %v, want ErrWholeNodeReservation", err)
	}

	c.ReleaseReservation(whole)
	if _, err := c.GrowReservation(whole, 1); !errors.Is(err, ErrReleasedReservation) {
		t.Fatalf("grow(released) = %v, want ErrReleasedReservation", err)
	}
	// A released-lease allocation keeps wrapping ErrInsufficientResources —
	// the executor parks the step and waits for the suspend signal — while
	// also carrying the typed cause for classification.
	_, err = c.AllocateIn(whole, 1, 1, 1)
	if !errors.Is(err, ErrInsufficientResources) || !errors.Is(err, ErrReleasedReservation) {
		t.Fatalf("AllocateIn(released) = %v, want both ErrInsufficientResources and ErrReleasedReservation", err)
	}
}
