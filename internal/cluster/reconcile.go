package cluster

import (
	"fmt"
	"time"

	"github.com/asap-project/ires/internal/agent"
	"github.com/asap-project/ires/internal/trace"
)

// This file is the reconciler half of the node-agent split: the control
// plane's periodic loop that reads every agent's published report, detects
// drift and death, and converges the desired view (Node fields, live
// containers, checkpoint metadata) with each agent's actual truth.
//
// On every legacy path the two views mutate in lockstep, so a reconcile
// round over a quiescent, partition-free cluster observes nothing and emits
// nothing — which is what keeps the golden traces of scenarios that never
// reconcile byte-identical. Divergence enters only through partitions:
// reports freeze while truth keeps moving, deaths become silent, and the
// reconciler is what notices afterwards.

// ReconcileStats summarizes one reconcile round.
type ReconcileStats struct {
	// Agents is the number of agents examined (= cluster size).
	Agents int
	// Fresh counts agents whose report was current; Stale counts reports
	// frozen behind a partition and tolerated as-is.
	Fresh int
	Stale int
	// Deaths counts crashes the round detected (incarnation advance, health
	// collapse, or the staleness bound tripping); Restores counts nodes
	// whose belief returned to healthy.
	Deaths   int
	Restores int
	// Lost is the number of desired containers invalidated by detected
	// deaths; Fenced counts zombie containers killed on agents that
	// outlived a unilateral death declaration.
	Lost   int
	Fenced int
}

// PartitionNode cuts the node's report channel: the agent's published
// report freezes at its current truth (Stale=true) while the actual state
// keeps moving. Legacy mutation paths still reach the agent — a partition
// models lost observability, not a fenced machine — so only failures and
// restores played through the partition create real drift.
func (c *Cluster) PartitionNode(name string) error {
	var now time.Duration
	if c.clock != nil {
		now = c.clock.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if !n.ag.Partitioned() {
		n.ag.Partition()
		c.partitionedAt[name] = now
	}
	return nil
}

// HealPartition restores the node's report channel; the next Reconcile
// observes a fresh report and converges whatever happened behind the
// partition. Healing an unpartitioned node is a no-op.
func (c *Cluster) HealPartition(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	n.ag.Heal()
	delete(c.partitionedAt, name)
	return nil
}

// SetMaxStaleness arms the reconciler's unilateral death bound: a node
// whose reports have been stale for at least d is declared dead — desired
// containers invalidated, checkpoint replicas dropped — without waiting for
// the heal. Zero (the default) disables the bound: stale nodes are
// tolerated indefinitely. If the agent actually survived, the declaration
// is corrected after the heal (belief restored, zombie containers fenced).
func (c *Cluster) SetMaxStaleness(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxStaleness = d
}

// Reconcile runs one reconciliation round: it reads every agent's report in
// stable node order, tolerates stale ones (emitting agent.drift, and
// applying the MaxStaleness death bound when armed), and converges the
// desired state with every fresh report — detecting deaths and rebirths
// that happened behind a partition, restoring belief in recovered nodes,
// and fencing zombie containers that survived a premature death
// declaration. Events are emitted after the lock is released, in node
// order.
func (c *Cluster) Reconcile() ReconcileStats {
	var now time.Duration
	if c.clock != nil {
		now = c.clock.Now()
	}
	var stats ReconcileStats
	var events []trace.Event

	c.mu.Lock()
	// Desired container ids per node, recomputed once per round.
	desired := make(map[string]map[int]bool, len(c.nodes))
	for id, ctr := range c.live {
		m := desired[ctr.NodeName]
		if m == nil {
			m = make(map[int]bool)
			desired[ctr.NodeName] = m
		}
		m[id] = true
	}
	for _, name := range c.order {
		n := c.nodes[name]
		stats.Agents++
		rep := n.ag.Report()

		if rep.Stale {
			stats.Stale++
			c.driftObserved++
			staleFor := time.Duration(0)
			if t0, ok := c.partitionedAt[name]; ok && now > t0 {
				staleFor = now - t0
			}
			events = append(events, trace.Event{
				Type: trace.EvAgentDrift, Node: name,
				Fields: map[string]float64{"staleSec": staleFor.Seconds(), "seq": float64(rep.Seq)},
			})
			if c.maxStaleness > 0 && n.healthy && staleFor >= c.maxStaleness {
				// Too stale to trust: declare the node dead unilaterally. If
				// the agent is in fact alive, the post-heal round restores
				// belief and fences the zombies.
				lost, lostCkpts := c.detectCrashLocked(n, now)
				stats.Deaths++
				stats.Lost += lost
				c.deathDetected++
				events = append(events, trace.Event{
					Type: trace.EvNodeCrash, Node: name,
					Fields: map[string]float64{
						"containersLost": float64(lost),
						"detected":       1,
						"staleSec":       staleFor.Seconds(),
					},
				})
				for _, key := range lostCkpts {
					events = append(events, trace.Event{Type: trace.EvCheckpointLost, Step: key, Node: name})
				}
			}
			continue
		}

		stats.Fresh++
		if rep.Seq != n.lastSeq || rep.Incarnation != n.lastIncarnation {
			events = append(events, trace.Event{
				Type: trace.EvAgentReport, Node: name,
				Fields: map[string]float64{
					"seq":         float64(rep.Seq),
					"incarnation": float64(rep.Incarnation),
					"usedCores":   float64(rep.UsedCores),
					"usedMemMB":   float64(rep.UsedMemMB),
					"containers":  float64(len(rep.Containers)),
				},
			})
		}

		// Death detection: an incarnation advance means the agent died and
		// was reborn unseen; a health collapse under an unchanged incarnation
		// is a silent death not yet restored. Either way the desired
		// containers and replicas of the old life are gone.
		if rep.Incarnation != n.lastIncarnation || (!rep.Healthy && n.healthy) {
			lost, lostCkpts := c.detectCrashLocked(n, now)
			stats.Deaths++
			stats.Lost += lost
			c.deathDetected++
			delete(desired, name) // invalidated with the crash
			events = append(events, trace.Event{
				Type: trace.EvNodeCrash, Node: name,
				Fields: map[string]float64{"containersLost": float64(lost), "detected": 1},
			})
			for _, key := range lostCkpts {
				events = append(events, trace.Event{Type: trace.EvCheckpointLost, Step: key, Node: name})
			}
		}

		// Belief alignment: a fresh healthy report on a believed-dead node is
		// a recovery (rebirth after a detected crash, or the node outliving a
		// premature declaration).
		if rep.Healthy && !n.healthy {
			c.setHealthLocked(n, true)
			stats.Restores++
			events = append(events, trace.Event{
				Type: trace.EvNodeRestore, Node: name,
				Fields: map[string]float64{"detected": 1},
			})
		}

		// Fencing: drive the agent toward desired. Containers the agent
		// hosts that the control plane no longer wants — zombies left by a
		// unilateral death declaration whose node turned out alive — are
		// killed; so are replica copies whose checkpoint entry moved on.
		for _, id := range rep.Containers {
			if !desired[name][id] {
				if _, ok := n.ag.Kill(id); ok {
					stats.Fenced++
				}
			}
		}
		for _, key := range rep.Replicas {
			e, ok := c.checkpoints[key]
			hosted := false
			if ok && !e.durable {
				for _, nn := range e.nodes {
					if nn == name {
						hosted = true
						break
					}
				}
			}
			if !hosted {
				n.ag.DropReplica(key)
			}
		}

		// Mark the report observed (post-fencing, so fencing's own seq bumps
		// do not read as news next round).
		end := n.ag.Report()
		n.lastSeq, n.lastIncarnation = end.Seq, end.Incarnation
	}
	c.mu.Unlock()

	for _, ev := range events {
		c.emit(ev)
	}
	return stats
}

// StartReconciler schedules Reconcile on the cluster's virtual clock every
// period, starting one period from now. Idempotent; a nil clock or
// non-positive period disables it.
func (c *Cluster) StartReconciler(period time.Duration) {
	c.mu.Lock()
	if c.reconcilerOn || c.clock == nil || period <= 0 {
		c.mu.Unlock()
		return
	}
	c.reconcilerOn = true
	clock := c.clock
	c.mu.Unlock()
	var tick func(time.Duration)
	tick = func(time.Duration) {
		c.Reconcile()
		clock.Schedule(clock.Now()+period, tick)
	}
	clock.Schedule(clock.Now()+period, tick)
}

// AgentReports returns every agent's published report in stable node order —
// the heartbeat view Monitor.Poll and the HTTP API read. Reports of
// partitioned nodes come back frozen with Stale set.
func (c *Cluster) AgentReports() []agent.Report {
	c.mu.Lock()
	agents := make([]*agent.Agent, len(c.order))
	for i, name := range c.order {
		agents[i] = c.nodes[name].ag
	}
	c.mu.Unlock()
	out := make([]agent.Report, len(agents))
	for i, a := range agents {
		out[i] = a.Report()
	}
	return out
}

// DesiredActualDiff counts the divergences between the control plane's
// desired view and the agents' live truth: one per node whose believed
// health differs from the agent's, plus one per container present in
// exactly one of the two views. Zero at every quiescent, partition-free
// point; the convergence storm tests assert exactly that.
func (c *Cluster) DesiredActualDiff() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	diff := 0
	desired := make(map[string]map[int]bool, len(c.nodes))
	for id, ctr := range c.live {
		m := desired[ctr.NodeName]
		if m == nil {
			m = make(map[int]bool)
			desired[ctr.NodeName] = m
		}
		m[id] = true
	}
	for _, name := range c.order {
		n := c.nodes[name]
		if n.ag.Healthy() != n.healthy {
			diff++
		}
		hosted := make(map[int]bool)
		for _, p := range n.ag.Placements() { // live truth even behind a partition
			hosted[p.ID] = true
			if !desired[name][p.ID] {
				diff++
			}
		}
		for id := range desired[name] {
			if !hosted[id] {
				diff++
			}
		}
	}
	return diff
}

// DriftObserved returns the cumulative number of stale reports reconcile
// rounds have tolerated.
func (c *Cluster) DriftObserved() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.driftObserved
}

// DeathsDetected returns the cumulative number of node deaths detected by
// reconciliation (as opposed to announced synchronously by FailNode).
func (c *Cluster) DeathsDetected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deathDetected
}
