package cluster

import "sort"

// ckptEntry is the stored progress of one checkpointable operator attempt.
// Non-durable checkpoints live on the local disks of the gang's nodes
// (replicated across the gang): they survive preemption and engine outages
// but die with their last replica node. Durable checkpoints are materialized
// to the shared store (HDFS-style) and survive any node crash.
type ckptEntry struct {
	algorithm string
	units     int // work units completed at the checkpoint
	total     int // total work units of the operator run
	durable   bool
	nodes     []string // replica nodes (sorted); empty for durable entries
}

// PutCheckpoint records checkpoint progress under key. Progress is
// monotonic: an entry for the same algorithm and total keeps the maximum
// units seen (a slow original finishing unit 3 cannot roll back a
// speculative copy that already banked unit 5). A different algorithm or
// total replaces the entry outright — stale progress from an abandoned
// implementation choice must not seed a different computation.
func (c *Cluster) PutCheckpoint(key, algorithm string, units, total int, nodes []string, durable bool) {
	if key == "" || units <= 0 || total <= 0 || units > total {
		return
	}
	replicas := append([]string(nil), nodes...)
	sort.Strings(replicas)
	if durable {
		replicas = nil
	}
	c.mu.Lock()
	if c.checkpoints == nil {
		c.checkpoints = make(map[string]*ckptEntry)
	}
	if old, ok := c.checkpoints[key]; ok {
		if old.algorithm == algorithm && old.total == total && old.units >= units {
			c.mu.Unlock()
			return
		}
		// The entry advances or is replaced: its replica set moves to the
		// new nodes, so the old hosts drop their local copies.
		if !old.durable {
			for _, nn := range old.nodes {
				if n, ok := c.nodes[nn]; ok {
					n.ag.DropReplica(key)
				}
			}
		}
	}
	c.checkpoints[key] = &ckptEntry{algorithm: algorithm, units: units, total: total, durable: durable, nodes: replicas}
	for _, nn := range replicas {
		if n, ok := c.nodes[nn]; ok {
			n.ag.AddReplica(key)
		}
	}
	mirror := c.ckptMirror
	c.mu.Unlock()
	// The mirror hook fires only for entries that actually advanced, so two
	// clusters mirroring each other reach a fixed point instead of looping.
	if mirror != nil {
		mirror(key, algorithm, units, total, durable)
	}
}

// SetCheckpointMirror installs an observer called (without the cluster
// lock) whenever a checkpoint entry is stored or advances. The federation
// layer uses it to replicate durable checkpoints to sibling clusters, so a
// cross-cluster replan after a region outage restores banked units instead
// of recomputing them. A nil fn disables mirroring.
func (c *Cluster) SetCheckpointMirror(fn func(key, algorithm string, units, total int, durable bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ckptMirror = fn
}

// CheckpointProgress returns the banked units under key, or zero when no
// checkpoint exists or the stored one belongs to a different computation
// (algorithm or total mismatch).
func (c *Cluster) CheckpointProgress(key, algorithm string, total int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.checkpoints[key]
	if !ok || e.algorithm != algorithm || e.total != total {
		return 0
	}
	return e.units
}

// CheckpointInfo returns the raw stored entry under key, if any.
func (c *Cluster) CheckpointInfo(key string) (algorithm string, units, total int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.checkpoints[key]
	if !found {
		return "", 0, 0, false
	}
	return e.algorithm, e.units, e.total, true
}

// ClearCheckpoint drops the entry under key (the operator completed; its
// checkpoints are garbage) along with the agent-side replicas.
func (c *Cluster) ClearCheckpoint(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.checkpoints[key]
	if !ok {
		return
	}
	for _, nn := range e.nodes {
		if n, ok := c.nodes[nn]; ok {
			n.ag.DropReplica(key)
		}
	}
	delete(c.checkpoints, key)
}

// Checkpoints returns the number of stored checkpoint entries.
func (c *Cluster) Checkpoints() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.checkpoints)
}

// dropCheckpointReplicasLocked removes a crashed node from every non-durable
// checkpoint's replica set, deleting entries whose last replica died. It
// returns the lost keys in sorted order; the caller emits the loss events
// after releasing c.mu.
func (c *Cluster) dropCheckpointReplicasLocked(name string) []string {
	var lost []string
	keys := make([]string, 0, len(c.checkpoints))
	for k := range c.checkpoints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := c.checkpoints[k]
		if e.durable {
			continue
		}
		kept := e.nodes[:0]
		for _, n := range e.nodes {
			if n != name {
				kept = append(kept, n)
			}
		}
		e.nodes = kept
		if len(e.nodes) == 0 {
			delete(c.checkpoints, k)
			lost = append(lost, k)
		}
	}
	return lost
}
