// Package cluster simulates the YARN-managed multi-engine cloud IReS
// enforces plans on: nodes with core/memory capacity, container-level
// allocation, and the two health mechanisms of D3.3 §2.3 — per-node health
// scripts (HEALTHY/UNHEALTHY) and per-service availability checks (ON/OFF,
// tracked by engine.Environment and polled through the Monitor here).
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/vtime"
)

// ErrInsufficientResources indicates no healthy node can host the requested
// container(s).
var ErrInsufficientResources = errors.New("cluster: insufficient resources")

// ErrUnknownNode indicates a node name not present in the cluster.
var ErrUnknownNode = errors.New("cluster: unknown node")

// Node is one machine of the simulated cluster.
type Node struct {
	Name   string
	Cores  int
	MemMB  int
	Labels map[string]string

	healthy   bool
	usedCores int
	usedMemMB int
	// reservedBy names the reservation holding this node (0 = unreserved).
	// A node belongs to at most one reservation at a time, which is what
	// makes admission quotas impossible to oversubscribe.
	reservedBy int
}

// FreeCores returns the node's unallocated cores.
func (n *Node) FreeCores() int { return n.Cores - n.usedCores }

// FreeMemMB returns the node's unallocated memory.
func (n *Node) FreeMemMB() int { return n.MemMB - n.usedMemMB }

// Healthy reports the node's last health verdict.
func (n *Node) Healthy() bool { return n.healthy }

// Container is a granted resource lease on one node.
type Container struct {
	ID       int
	NodeName string
	Cores    int
	MemMB    int

	// resID records the reservation the container was allocated under
	// (0 when allocated from the unreserved pool).
	resID int

	released bool
	lost     atomic.Bool
	lostAt   atomic.Int64 // virtual time of the loss, ns
}

// Lost reports whether the container was invalidated by a node failure.
// Lost containers no longer hold resources; the work running in them is
// gone and must be retried elsewhere.
func (ctr *Container) Lost() bool { return ctr.lost.Load() }

// LostAt returns the virtual time at which the container was invalidated
// (zero unless Lost).
func (ctr *Container) LostAt() time.Duration { return time.Duration(ctr.lostAt.Load()) }

// Cluster is the simulated resource manager. It is safe for concurrent use.
type Cluster struct {
	mu     sync.Mutex
	nodes  map[string]*Node
	order  []string
	clock  *vtime.Clock
	nextID int
	live   map[int]*Container // outstanding (non-released) containers by ID

	nextResID    int
	reservations map[int]*Reservation // outstanding node leases by ID

	// freeHealthy and reserved are the scheduling-counter hot path: the
	// number of healthy unreserved nodes and the number of reserved nodes,
	// maintained as deltas at every reserve/release/grow/shrink/revoke/
	// fail/restore boundary so UnreservedHealthy and ReservedNodes are O(1)
	// per call instead of O(nodes) map scans. CheckInvariants recomputes
	// both from scratch and fails on drift.
	freeHealthy int
	reserved    int

	// checkpoints stores sub-operator checkpoint progress by key (see
	// checkpoint.go); non-durable entries die with their replica nodes.
	checkpoints map[string]*ckptEntry

	// healthScript is the customizable per-node health probe; the default
	// returns the node's current flag (set via SetNodeHealth, the failure
	// injection hook).
	healthScript func(n *Node) bool

	// tracer receives node crash/restore events; nil discards them.
	tracer trace.Tracer
}

// SetTracer installs the event sink for node crash/restore events.
func (c *Cluster) SetTracer(t trace.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
}

// emit stamps the current virtual time and forwards to the tracer. It must
// be called WITHOUT c.mu held: tracers may call back into the cluster (the
// test suite installs an invariant-checking tracer that does exactly that).
func (c *Cluster) emit(ev trace.Event) {
	c.mu.Lock()
	t := c.tracer
	clock := c.clock
	c.mu.Unlock()
	if t == nil {
		return
	}
	var now time.Duration
	if clock != nil {
		now = clock.Now()
	}
	t.Emit(ev.At(now))
}

// New builds a cluster of count identical nodes named node0..node<count-1>.
func New(clock *vtime.Clock, count, coresPerNode, memMBPerNode int) *Cluster {
	c := &Cluster{
		nodes:        make(map[string]*Node),
		clock:        clock,
		live:         make(map[int]*Container),
		reservations: make(map[int]*Reservation),
		checkpoints:  make(map[string]*ckptEntry),
	}
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("node%d", i)
		c.nodes[name] = &Node{Name: name, Cores: coresPerNode, MemMB: memMBPerNode, healthy: true}
		c.order = append(c.order, name)
	}
	c.freeHealthy = count
	return c
}

// setHealthLocked flips a node's health flag, keeping the freeHealthy
// counter consistent; c.mu held.
func (c *Cluster) setHealthLocked(n *Node, healthy bool) {
	if n.healthy == healthy {
		return
	}
	n.healthy = healthy
	if n.reservedBy == 0 {
		if healthy {
			c.freeHealthy++
		} else {
			c.freeHealthy--
		}
	}
}

// reserveNodeLocked assigns an unreserved node to a reservation; c.mu held.
func (c *Cluster) reserveNodeLocked(n *Node, resID int) {
	n.reservedBy = resID
	c.reserved++
	if n.healthy {
		c.freeHealthy--
	}
}

// unreserveNodeLocked returns a node held by a reservation to the pool;
// c.mu held.
func (c *Cluster) unreserveNodeLocked(n *Node) {
	n.reservedBy = 0
	c.reserved--
	if n.healthy {
		c.freeHealthy++
	}
}

// SetHealthScript installs a custom health probe, mirroring the
// yarn.nodemanager.services-running health-script mechanism.
func (c *Cluster) SetHealthScript(fn func(n *Node) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.healthScript = fn
}

// RunHealthChecks executes the health script on every node, updates node
// states and returns the per-node verdicts.
func (c *Cluster) RunHealthChecks() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool, len(c.nodes))
	for _, name := range c.order {
		n := c.nodes[name]
		if c.healthScript != nil {
			c.setHealthLocked(n, c.healthScript(n))
		}
		out[name] = n.healthy
	}
	return out
}

// SetNodeHealth flips a node's health flag directly (failure injection).
func (c *Cluster) SetNodeHealth(name string, healthy bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	c.setHealthLocked(n, healthy)
	return nil
}

// FailNode schedules a node crash at absolute virtual time at (immediately
// when at is not in the future): the node is marked UNHEALTHY and every live
// container hosted on it is invalidated — its resources are freed and its
// Lost flag is raised so the executor fails the work that was running there
// instead of letting it complete impossibly. It returns ErrUnknownNode for
// unknown names; the crash itself happens asynchronously on the clock.
func (c *Cluster) FailNode(name string, at time.Duration) error {
	c.mu.Lock()
	_, ok := c.nodes[name]
	clock := c.clock
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if clock == nil || at <= clock.Now() {
		c.failNodeNow(name, at)
		return nil
	}
	clock.Schedule(at, func(now time.Duration) { c.failNodeNow(name, now) })
	return nil
}

// failNodeNow performs the crash: flips health and invalidates the node's
// live containers. It returns the number of containers lost.
func (c *Cluster) failNodeNow(name string, at time.Duration) int {
	c.mu.Lock()
	n, ok := c.nodes[name]
	if !ok {
		c.mu.Unlock()
		return 0
	}
	c.setHealthLocked(n, false)
	lost := 0
	for id, ctr := range c.live {
		if ctr.NodeName != name {
			continue
		}
		ctr.lostAt.Store(int64(at))
		ctr.lost.Store(true)
		ctr.released = true // resources are gone with the node; Release is a no-op
		delete(c.live, id)
		n.usedCores -= ctr.Cores
		n.usedMemMB -= ctr.MemMB
		lost++
	}
	lostCkpts := c.dropCheckpointReplicasLocked(name)
	c.mu.Unlock()
	c.emit(trace.Event{
		Type: trace.EvNodeCrash, Node: name,
		Fields: map[string]float64{"containersLost": float64(lost)},
	})
	for _, key := range lostCkpts {
		c.emit(trace.Event{Type: trace.EvCheckpointLost, Step: key, Node: name})
	}
	return lost
}

// RestoreNode brings a failed node back (repaired hardware rejoining the
// cluster): health is restored and its capacity becomes allocatable again.
func (c *Cluster) RestoreNode(name string) error {
	if err := c.SetNodeHealth(name, true); err != nil {
		return err
	}
	c.emit(trace.Event{Type: trace.EvNodeRestore, Node: name})
	return nil
}

// LiveContainers returns the number of outstanding (allocated, not released,
// not lost) containers.
func (c *Cluster) LiveContainers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.live)
}

// Nodes returns the cluster's nodes in stable order.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, len(c.order))
	for i, name := range c.order {
		out[i] = c.nodes[name]
	}
	return out
}

// HealthyNodes returns the currently healthy nodes.
func (c *Cluster) HealthyNodes() []*Node {
	var out []*Node
	for _, n := range c.Nodes() {
		if n.Healthy() {
			out = append(out, n)
		}
	}
	return out
}

// Reservation is an exclusive, elastic lease on a set of whole nodes — the
// admission currency of the multi-workflow scheduler. A run's executor
// allocates its containers only inside its reservation, so admitted runs can
// never starve each other of capacity (and the sum of reservations can never
// exceed the cluster, node-granularity enforced structurally). The lease is
// elastic: GrowReservation adds nodes while the run executes,
// ShrinkReservation returns idle nodes to the pool (shrink-at-operator-
// boundary: only nodes with no live containers of the lease may leave), and
// RevokeReservation ends the lease entirely (preemption/voluntary release).
type Reservation struct {
	c     *Cluster
	id    int
	nodes []string // stable order; mutated only under c.mu
	// released marks the lease revoked; all accessors and elastic ops on a
	// released lease fail or return empty. Guarded by c.mu.
	released bool
}

// ID returns the reservation's cluster-unique id.
func (r *Reservation) ID() int { return r.id }

// Nodes returns the reserved node names in stable order. It takes the
// cluster lock: the node set of an elastic lease changes under Grow/Shrink,
// so an unlocked read could observe a half-applied resize.
func (r *Reservation) Nodes() []string {
	if r == nil {
		return nil
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	return append([]string(nil), r.nodes...)
}

// Size returns the number of reserved nodes (0 once revoked).
func (r *Reservation) Size() int {
	if r == nil {
		return 0
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	if r.released {
		return 0
	}
	return len(r.nodes)
}

// Released reports whether the lease has been revoked.
func (r *Reservation) Released() bool {
	if r == nil {
		return true
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	return r.released
}

// Reserve leases n whole healthy, unreserved nodes (first-fit in stable
// node order). It returns ErrInsufficientResources when fewer than n such
// nodes exist; the reservation is atomic.
func (c *Cluster) Reserve(n int) (*Reservation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: invalid reservation size %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var picked []string
	for _, name := range c.order {
		node := c.nodes[name]
		if node.healthy && node.reservedBy == 0 {
			picked = append(picked, name)
			if len(picked) == n {
				break
			}
		}
	}
	if len(picked) < n {
		return nil, fmt.Errorf("%w: want %d unreserved nodes, have %d", ErrInsufficientResources, n, len(picked))
	}
	c.nextResID++
	res := &Reservation{c: c, id: c.nextResID, nodes: picked}
	for _, name := range picked {
		c.reserveNodeLocked(c.nodes[name], res.id)
	}
	c.reservations[res.id] = res
	return res, nil
}

// GrowReservation extends a live lease by n more whole healthy unreserved
// nodes (first-fit in stable node order, like Reserve). The grow is atomic:
// on ErrInsufficientResources the lease is unchanged. It returns the names
// of the added nodes.
func (c *Cluster) GrowReservation(r *Reservation, n int) ([]string, error) {
	if r == nil {
		return nil, errors.New("cluster: grow of nil reservation")
	}
	if n <= 0 {
		return nil, fmt.Errorf("cluster: invalid grow size %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.released {
		return nil, errors.New("cluster: grow of released reservation")
	}
	var picked []string
	for _, name := range c.order {
		node := c.nodes[name]
		if node.healthy && node.reservedBy == 0 {
			picked = append(picked, name)
			if len(picked) == n {
				break
			}
		}
	}
	if len(picked) < n {
		return nil, fmt.Errorf("%w: want %d unreserved nodes, have %d", ErrInsufficientResources, n, len(picked))
	}
	for _, name := range picked {
		c.reserveNodeLocked(c.nodes[name], r.id)
	}
	// Rebuild the lease's node list in stable cluster order so Grow keeps
	// the same ordering discipline Reserve established.
	r.nodes = r.nodes[:0]
	for _, name := range c.order {
		if c.nodes[name].reservedBy == r.id {
			r.nodes = append(r.nodes, name)
		}
	}
	return picked, nil
}

// ShrinkReservation releases leased nodes back to the pool until the lease
// holds target nodes, but only nodes hosting no live container of this lease
// may leave — the structural form of shrink-at-operator-boundary semantics:
// gang containers are freed between plan steps, so a shrink issued at a step
// boundary always finds its nodes idle, while a shrink racing running work
// simply keeps the busy nodes. Idle nodes are released from the end of the
// stable node order. It returns the names of the released nodes (possibly
// fewer than requested when busy nodes pin the lease above target).
func (c *Cluster) ShrinkReservation(r *Reservation, target int) ([]string, error) {
	if r == nil {
		return nil, errors.New("cluster: shrink of nil reservation")
	}
	if target < 1 {
		return nil, fmt.Errorf("cluster: invalid shrink target %d", target)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.released {
		return nil, errors.New("cluster: shrink of released reservation")
	}
	busy := make(map[string]bool)
	for _, ctr := range c.live {
		if ctr.resID == r.id {
			busy[ctr.NodeName] = true
		}
	}
	var removed []string
	for i := len(r.nodes) - 1; i >= 0 && len(r.nodes)-len(removed) > target; i-- {
		name := r.nodes[i]
		if busy[name] {
			continue
		}
		removed = append(removed, name)
	}
	if len(removed) == 0 {
		return nil, nil
	}
	drop := make(map[string]bool, len(removed))
	for _, name := range removed {
		drop[name] = true
		if n, ok := c.nodes[name]; ok && n.reservedBy == r.id {
			c.unreserveNodeLocked(n)
		}
	}
	kept := r.nodes[:0]
	for _, name := range r.nodes {
		if !drop[name] {
			kept = append(kept, name)
		}
	}
	r.nodes = kept
	return removed, nil
}

// RevokeReservation ends a lease: every node returns to the unreserved pool
// and any containers still allocated under the lease are force-released (the
// count is returned — a cooperative preemption that drained at an operator
// boundary revokes with zero). Revoking twice is a safe no-op.
func (c *Cluster) RevokeReservation(r *Reservation) int {
	if r == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.released {
		return 0
	}
	dropped := 0
	for id, ctr := range c.live {
		if ctr.resID != r.id {
			continue
		}
		ctr.released = true
		delete(c.live, id)
		if n, ok := c.nodes[ctr.NodeName]; ok {
			n.usedCores -= ctr.Cores
			n.usedMemMB -= ctr.MemMB
		}
		dropped++
	}
	c.releaseReservationLocked(r)
	return dropped
}

// ReleaseReservation returns the leased nodes to the unreserved pool.
// Releasing twice is a safe no-op (idempotent: the released flag and the
// reservation-table entry are cleared together under one critical section,
// so double-release in suspend paths cannot free another lease's nodes).
func (c *Cluster) ReleaseReservation(r *Reservation) {
	if r == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.released {
		return
	}
	c.releaseReservationLocked(r)
}

// releaseReservationLocked clears the lease under c.mu.
func (c *Cluster) releaseReservationLocked(r *Reservation) {
	r.released = true
	if _, ok := c.reservations[r.id]; !ok {
		return
	}
	delete(c.reservations, r.id)
	for _, name := range r.nodes {
		if n, ok := c.nodes[name]; ok && n.reservedBy == r.id {
			c.unreserveNodeLocked(n)
		}
	}
}

// UnreservedHealthy counts the healthy nodes not held by any reservation —
// the pool admission policies draw quotas from. O(1): the counter is
// maintained as deltas at every reserve/release/health boundary.
func (c *Cluster) UnreservedHealthy() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.freeHealthy
}

// ReservedNodes counts the nodes currently held by reservations. O(1), like
// UnreservedHealthy.
func (c *Cluster) ReservedNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reserved
}

// Allocate grants count containers of (cores, memMB) each, spread over the
// healthy unreserved nodes with a most-free-first policy. Allocation is
// atomic: either all containers are granted or none. (On a cluster with no
// reservations this is every healthy node — the single-workflow behaviour.)
func (c *Cluster) Allocate(count, cores, memMB int) ([]*Container, error) {
	return c.allocate(count, cores, memMB, 0)
}

// AllocateIn is Allocate restricted to the nodes of a reservation: the
// per-run allocation path of the multi-workflow scheduler.
func (c *Cluster) AllocateIn(r *Reservation, count, cores, memMB int) ([]*Container, error) {
	if r == nil {
		return c.allocate(count, cores, memMB, 0)
	}
	return c.allocate(count, cores, memMB, r.id)
}

// allocate places containers on healthy nodes whose reservedBy matches
// resID (0 = the unreserved pool).
func (c *Cluster) allocate(count, cores, memMB, resID int) ([]*Container, error) {
	if count <= 0 || cores <= 0 || memMB <= 0 {
		return nil, fmt.Errorf("cluster: invalid request %dx(%dc,%dMB)", count, cores, memMB)
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	var granted []*Container
	rollback := func() {
		for _, ctr := range granted {
			n := c.nodes[ctr.NodeName]
			n.usedCores -= ctr.Cores
			n.usedMemMB -= ctr.MemMB
			delete(c.live, ctr.ID)
		}
	}
	for i := 0; i < count; i++ {
		// Most-free node first, name as tiebreak for determinism.
		var best *Node
		for _, name := range c.order {
			n := c.nodes[name]
			if !n.healthy || n.reservedBy != resID || n.FreeCores() < cores || n.FreeMemMB() < memMB {
				continue
			}
			if best == nil || n.FreeCores() > best.FreeCores() ||
				(n.FreeCores() == best.FreeCores() && n.Name < best.Name) {
				best = n
			}
		}
		if best == nil {
			rollback()
			return nil, fmt.Errorf("%w: want %dx(%dc,%dMB)", ErrInsufficientResources, count, cores, memMB)
		}
		best.usedCores += cores
		best.usedMemMB += memMB
		c.nextID++
		ctr := &Container{ID: c.nextID, NodeName: best.Name, Cores: cores, MemMB: memMB, resID: resID}
		c.live[ctr.ID] = ctr
		granted = append(granted, ctr)
	}
	return granted, nil
}

// Release returns a container's resources to its node. Releasing twice is a
// safe no-op.
func (c *Cluster) Release(ctr *Container) {
	if ctr == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr.released {
		return
	}
	ctr.released = true
	delete(c.live, ctr.ID)
	if n, ok := c.nodes[ctr.NodeName]; ok {
		n.usedCores -= ctr.Cores
		n.usedMemMB -= ctr.MemMB
	}
}

// ReleaseAll releases a batch of containers.
func (c *Cluster) ReleaseAll(ctrs []*Container) {
	for _, ctr := range ctrs {
		c.Release(ctr)
	}
}

// Available sums the free resources over healthy nodes.
func (c *Cluster) Available() (cores, memMB int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.healthy {
			cores += n.FreeCores()
			memMB += n.FreeMemMB()
		}
	}
	return cores, memMB
}

// Capacity sums total resources over all nodes, healthy or not.
func (c *Cluster) Capacity() (cores, memMB int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		cores += n.Cores
		memMB += n.MemMB
	}
	return cores, memMB
}

// Utilization returns allocated cores over healthy capacity in [0,1].
func (c *Cluster) Utilization() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total, used := 0, 0
	for _, n := range c.nodes {
		if n.healthy {
			total += n.Cores
			used += n.usedCores
		}
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}

// Clock exposes the cluster's virtual clock.
func (c *Cluster) Clock() *vtime.Clock { return c.clock }

// CheckInvariants verifies resource-accounting invariants; tests call it
// after random allocate/release sequences.
func (c *Cluster) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	// The O(1) scheduling counters must agree with a from-scratch recount —
	// any missed delta on a reserve/release/grow/shrink/revoke/fail/restore
	// path shows up here.
	freeHealthy, reserved := 0, 0
	for _, name := range names {
		n := c.nodes[name]
		if n.healthy && n.reservedBy == 0 {
			freeHealthy++
		}
		if n.reservedBy != 0 {
			reserved++
		}
	}
	if freeHealthy != c.freeHealthy {
		return fmt.Errorf("cluster: freeHealthy counter drifted: have %d, recount %d", c.freeHealthy, freeHealthy)
	}
	if reserved != c.reserved {
		return fmt.Errorf("cluster: reserved counter drifted: have %d, recount %d", c.reserved, reserved)
	}
	for _, name := range names {
		n := c.nodes[name]
		if n.usedCores < 0 || n.usedMemMB < 0 {
			return fmt.Errorf("cluster: node %s negative usage (%d cores, %d MB)", name, n.usedCores, n.usedMemMB)
		}
		if n.usedCores > n.Cores || n.usedMemMB > n.MemMB {
			return fmt.Errorf("cluster: node %s over-allocated (%d/%d cores, %d/%d MB)",
				name, n.usedCores, n.Cores, n.usedMemMB, n.MemMB)
		}
		if n.reservedBy != 0 {
			res, ok := c.reservations[n.reservedBy]
			if !ok {
				return fmt.Errorf("cluster: node %s reserved by unknown reservation %d", name, n.reservedBy)
			}
			found := false
			for _, rn := range res.nodes {
				if rn == name {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("cluster: node %s claims reservation %d which does not list it", name, n.reservedBy)
			}
		}
	}
	// Reservations are disjoint whole-node leases: their total size can
	// never exceed the cluster, and every reserved node must point back.
	reserved = 0
	for id, res := range c.reservations {
		if res.released {
			return fmt.Errorf("cluster: released reservation %d still in the reservation table", id)
		}
		if len(res.nodes) == 0 {
			return fmt.Errorf("cluster: live reservation %d holds no nodes (shrink below 1?)", id)
		}
		reserved += len(res.nodes)
		seen := make(map[string]bool, len(res.nodes))
		for _, rn := range res.nodes {
			if seen[rn] {
				return fmt.Errorf("cluster: reservation %d lists node %s twice", id, rn)
			}
			seen[rn] = true
			n, ok := c.nodes[rn]
			if !ok {
				return fmt.Errorf("cluster: reservation %d lists unknown node %s", id, rn)
			}
			if n.reservedBy != id {
				return fmt.Errorf("cluster: reservation %d lists node %s held by %d", id, rn, n.reservedBy)
			}
		}
		// The back-pointer count must match the lease's node list exactly —
		// a grow/shrink that half-applied would break this symmetry.
		backRefs := 0
		for _, name := range c.order {
			if c.nodes[name].reservedBy == id {
				backRefs++
			}
		}
		if backRefs != len(res.nodes) {
			return fmt.Errorf("cluster: reservation %d holds %d nodes but %d nodes point back",
				id, len(res.nodes), backRefs)
		}
	}
	if reserved > len(c.nodes) {
		return fmt.Errorf("cluster: %d reserved nodes exceed cluster size %d", reserved, len(c.nodes))
	}
	// Containers allocated under a still-live reservation must sit on that
	// reservation's nodes.
	for id, ctr := range c.live {
		if ctr.resID == 0 {
			continue
		}
		if _, ok := c.reservations[ctr.resID]; !ok {
			continue // lease released/crashed away while work drained
		}
		n, ok := c.nodes[ctr.NodeName]
		if !ok {
			return fmt.Errorf("cluster: container %d on unknown node %s", id, ctr.NodeName)
		}
		if n.reservedBy != ctr.resID {
			return fmt.Errorf("cluster: container %d allocated under reservation %d but node %s is held by %d",
				id, ctr.resID, ctr.NodeName, n.reservedBy)
		}
	}
	// Checkpoint entries must hold consistent progress, and non-durable ones
	// must have at least one replica on a known node (entries losing their
	// last replica are deleted in the same critical section as the crash).
	for key, e := range c.checkpoints {
		if e.units <= 0 || e.total <= 0 || e.units > e.total {
			return fmt.Errorf("cluster: checkpoint %q has inconsistent progress %d/%d", key, e.units, e.total)
		}
		if e.durable {
			continue
		}
		if len(e.nodes) == 0 {
			return fmt.Errorf("cluster: non-durable checkpoint %q has no replicas", key)
		}
		for _, n := range e.nodes {
			if _, ok := c.nodes[n]; !ok {
				return fmt.Errorf("cluster: checkpoint %q replicated on unknown node %s", key, n)
			}
		}
	}
	return nil
}
