// Package cluster simulates the YARN-managed multi-engine cloud IReS
// enforces plans on: nodes with core/memory capacity, container-level
// allocation, and the two health mechanisms of D3.3 §2.3 — per-node health
// scripts (HEALTHY/UNHEALTHY) and per-service availability checks (ON/OFF,
// tracked by engine.Environment and polled through the Monitor here).
//
// Since the node-agent split, the package is layered: each node's *actual*
// truth (hosted containers, usage, health, checkpoint replicas) lives in a
// per-node agent actor (internal/agent) behind the Offer/Place/Kill/Report
// contract, while Cluster keeps the *desired* control-plane state
// (reservations, slices, demanded containers, believed health) and drives
// the agents toward it. The public Cluster API is a façade over that
// reconciler, so schedulers and executors — and their golden traces — are
// unchanged. Desired and actual views agree at every quiescent point; they
// diverge only while an agent drifts (stale reports behind a partition) or
// dies undetected, and Reconcile converges them again.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asap-project/ires/internal/agent"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/vtime"
)

// ErrInsufficientResources indicates no healthy node can host the requested
// container(s).
var ErrInsufficientResources = errors.New("cluster: insufficient resources")

// ErrUnknownNode indicates a node name not present in the cluster.
var ErrUnknownNode = errors.New("cluster: unknown node")

// Reservation-misuse sentinels. Elastic-lease operations handed a lease in
// the wrong state fail with one of these typed errors so callers (the
// executor's retry classification above all) branch with errors.Is instead
// of matching message substrings.
var (
	// ErrNilReservation rejects an elastic operation on a nil lease.
	ErrNilReservation = errors.New("cluster: nil reservation")
	// ErrReleasedReservation rejects an operation on a revoked lease.
	ErrReleasedReservation = errors.New("cluster: released reservation")
	// ErrForeignReservation rejects a lease that belongs to a different
	// cluster — a federation-layer misuse, where several clusters coexist.
	ErrForeignReservation = errors.New("cluster: reservation belongs to a different cluster")
	// ErrWholeNodeReservation rejects slice-only operations (ResizeSlice)
	// on a whole-node lease.
	ErrWholeNodeReservation = errors.New("cluster: whole-node reservation (use Grow/Shrink)")
)

// Node is one machine of the simulated cluster, as the control plane sees
// it: the exported fields and the private ones below are the *desired*
// (believed) view — what the scheduler's admission math runs on — while the
// node's actual truth lives in its agent. The two views are identical on
// every legacy path and diverge only behind a partition, until Reconcile
// detects the drift.
type Node struct {
	Name   string
	Cores  int
	MemMB  int
	Labels map[string]string

	// ag owns the node's actual truth (containers, usage, health,
	// checkpoint replicas).
	ag *agent.Agent
	// lastSeq/lastIncarnation track the last agent report the reconciler
	// observed, for news detection and rebirth detection respectively.
	lastSeq         int64
	lastIncarnation int

	healthy   bool
	usedCores int
	usedMemMB int
	// reservedBy names the whole-node reservation holding this node
	// (0 = unreserved). A node belongs to at most one whole-node
	// reservation at a time, which is what makes admission quotas
	// impossible to oversubscribe.
	reservedBy int
	// sliceCores/sliceMemMB sum the per-node (cores, memMB) slices granted
	// to slice reservations on this node, and sliceRefs counts those
	// reservations. Whole-node and slice reservations never coexist on a
	// node: Reserve skips sliced nodes and ReserveSlices skips whole-node
	// reserved ones. Slice sums are bounded by Cores and by MemMB times the
	// cluster's memory-overcommit ratio.
	sliceCores int
	sliceMemMB int
	sliceRefs  int
}

// FreeCores returns the node's unallocated cores (desired view).
func (n *Node) FreeCores() int { return n.Cores - n.usedCores }

// FreeMemMB returns the node's unallocated memory (desired view).
func (n *Node) FreeMemMB() int { return n.MemMB - n.usedMemMB }

// Healthy reports the node's last health verdict as believed by the control
// plane. Behind a partition this can lag the agent's actual truth (see
// Agent().Report() for the published view).
func (n *Node) Healthy() bool { return n.healthy }

// Agent returns the node's agent actor — the owner of the node's actual
// truth.
func (n *Node) Agent() *agent.Agent { return n.ag }

// Container is a granted resource lease on one node.
type Container struct {
	ID       int
	NodeName string
	Cores    int
	MemMB    int

	// resID records the reservation the container was allocated under
	// (0 when allocated from the unreserved pool).
	resID int

	released bool
	lost     atomic.Bool
	lostAt   atomic.Int64 // virtual time of the loss, ns
}

// Lost reports whether the container was invalidated by a node failure.
// Lost containers no longer hold resources; the work running in them is
// gone and must be retried elsewhere.
func (ctr *Container) Lost() bool { return ctr.lost.Load() }

// LostAt returns the virtual time at which the container was invalidated
// (zero unless Lost).
func (ctr *Container) LostAt() time.Duration { return time.Duration(ctr.lostAt.Load()) }

// Cluster is the simulated resource manager. It is safe for concurrent use.
type Cluster struct {
	mu     sync.Mutex
	nodes  map[string]*Node
	order  []string
	clock  *vtime.Clock
	nextID int
	live   map[int]*Container // outstanding (non-released) containers by ID

	nextResID    int
	reservations map[int]*Reservation // outstanding node leases by ID

	// freeHealthy and reserved are the scheduling-counter hot path: the
	// number of healthy nodes held by no reservation (whole-node or slice)
	// and the number of whole-node reserved nodes, maintained as deltas at
	// every reserve/release/grow/shrink/revoke/fail/restore boundary so
	// UnreservedHealthy and ReservedNodes are O(1) per call instead of
	// O(nodes) map scans. reservedSliceCores/reservedSliceMemMB are the
	// same pattern per resource dimension: cluster-wide totals of granted
	// slice capacity, delta-maintained by every slice reserve/grow/shrink/
	// resize/revoke. CheckInvariants recomputes all four from scratch and
	// fails on drift.
	freeHealthy        int
	reserved           int
	reservedSliceCores int
	reservedSliceMemMB int

	// memOvercommit scales each node's allocatable memory past its physical
	// MemMB (1.0 = disabled). Cores are never overcommitted. When actual
	// container usage on a node exceeds *physical* memory after an
	// allocation, the oomKiller hook (if armed) decides whether the kernel
	// OOM killer fires; victims are invalidated exactly like containers on
	// a crashed node. The hook is called under c.mu and must not call back
	// into the cluster or emit trace events.
	memOvercommit float64
	oomKiller     func(node string, overMB int) bool

	// checkpoints stores sub-operator checkpoint progress by key (see
	// checkpoint.go); non-durable entries die with their replica nodes.
	checkpoints map[string]*ckptEntry

	// healthScript is the customizable per-node health probe; the default
	// returns the node's current flag (set via SetNodeHealth, the failure
	// injection hook).
	healthScript func(n *Node) bool

	// ckptMirror, when set, observes every checkpoint entry that advances
	// (see SetCheckpointMirror): the federation layer uses it to replicate
	// durable checkpoints across clusters. Called WITHOUT c.mu held.
	ckptMirror func(key, algorithm string, units, total int, durable bool)

	// partitionedAt records, per currently partitioned node, the virtual
	// time the partition began — the staleness clock agent.drift events and
	// the MaxStaleness death bound run on.
	partitionedAt map[string]time.Duration
	// maxStaleness, when positive, is the reconciler's unilateral death
	// bound: a node whose reports have been stale longer is declared dead
	// (its desired containers invalidated) without waiting for the heal.
	maxStaleness time.Duration
	// reconcilerOn guards StartReconciler idempotence; drift/detected count
	// reconciler observations for stats and tests.
	reconcilerOn  bool
	driftObserved int
	deathDetected int

	// tracer receives node crash/restore events; nil discards them.
	tracer trace.Tracer
}

// SetTracer installs the event sink for node crash/restore events.
func (c *Cluster) SetTracer(t trace.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
}

// emit stamps the current virtual time and forwards to the tracer. It must
// be called WITHOUT c.mu held: tracers may call back into the cluster (the
// test suite installs an invariant-checking tracer that does exactly that).
func (c *Cluster) emit(ev trace.Event) {
	c.mu.Lock()
	t := c.tracer
	clock := c.clock
	c.mu.Unlock()
	if t == nil {
		return
	}
	var now time.Duration
	if clock != nil {
		now = clock.Now()
	}
	t.Emit(ev.At(now))
}

// New builds a cluster of count identical nodes named node0..node<count-1>.
func New(clock *vtime.Clock, count, coresPerNode, memMBPerNode int) *Cluster {
	c := &Cluster{
		nodes:         make(map[string]*Node),
		clock:         clock,
		live:          make(map[int]*Container),
		reservations:  make(map[int]*Reservation),
		checkpoints:   make(map[string]*ckptEntry),
		partitionedAt: make(map[string]time.Duration),
	}
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("node%d", i)
		c.nodes[name] = &Node{
			Name: name, Cores: coresPerNode, MemMB: memMBPerNode,
			healthy: true,
			ag:      agent.New(name, coresPerNode, memMBPerNode),
		}
		c.order = append(c.order, name)
	}
	c.freeHealthy = count
	return c
}

// SetMemOvercommit sets the memory-overcommit ratio: each node accepts
// slice grants and container allocations up to MemMB*ratio, while cores
// stay bounded by physical capacity. Actual usage past *physical* MemMB
// triggers the OOM-killer hook (see SetOOMKiller). Ratios below 1 are
// rejected.
func (c *Cluster) SetMemOvercommit(ratio float64) error {
	if ratio < 1 {
		return fmt.Errorf("cluster: invalid memory overcommit ratio %.2f (want >= 1)", ratio)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memOvercommit = ratio
	return nil
}

// MemOvercommit returns the current overcommit ratio (1.0 when disabled).
func (c *Cluster) MemOvercommit() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.memOvercommit < 1 {
		return 1
	}
	return c.memOvercommit
}

// SetOOMKiller installs the oversubscription fault hook: after an
// allocation pushes a node's actual memory usage past physical capacity,
// the hook is consulted once per candidate kill with the node name and the
// overage in MB; returning true kills the node's largest live container
// (ties broken toward the newest). The hook runs under the cluster lock —
// it must be fast, deterministic, and must not call back into the cluster
// or emit trace events (the cluster emits fault.oomkill itself, outside
// its lock). A nil hook disables OOM kills: oversubscribed usage is then
// tolerated silently.
func (c *Cluster) SetOOMKiller(fn func(node string, overMB int) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.oomKiller = fn
}

// memCapLocked returns the node's allocatable memory ceiling under the
// current overcommit ratio; c.mu held.
func (c *Cluster) memCapLocked(n *Node) int {
	if c.memOvercommit <= 1 {
		return n.MemMB
	}
	return int(float64(n.MemMB)*c.memOvercommit + 0.5)
}

// setHealthLocked flips a node's health flag, keeping the freeHealthy
// counter consistent; c.mu held.
func (c *Cluster) setHealthLocked(n *Node, healthy bool) {
	if n.healthy == healthy {
		return
	}
	n.healthy = healthy
	if n.reservedBy == 0 && n.sliceRefs == 0 {
		if healthy {
			c.freeHealthy++
		} else {
			c.freeHealthy--
		}
	}
}

// reserveNodeLocked assigns an unreserved node to a reservation; c.mu held.
func (c *Cluster) reserveNodeLocked(n *Node, resID int) {
	n.reservedBy = resID
	c.reserved++
	if n.healthy {
		c.freeHealthy--
	}
}

// unreserveNodeLocked returns a node held by a reservation to the pool;
// c.mu held.
func (c *Cluster) unreserveNodeLocked(n *Node) {
	n.reservedBy = 0
	c.reserved--
	if n.healthy {
		c.freeHealthy++
	}
}

// addSliceLocked grants one (cores, memMB) slice on a node, maintaining
// the per-node sums, the slice refcount, the cluster-wide per-dimension
// delta counters, and freeHealthy (a node leaves the free pool when its
// first slice lands); c.mu held.
func (c *Cluster) addSliceLocked(n *Node, cores, memMB int) {
	if n.sliceRefs == 0 && n.healthy && n.reservedBy == 0 {
		c.freeHealthy--
	}
	n.sliceRefs++
	n.sliceCores += cores
	n.sliceMemMB += memMB
	c.reservedSliceCores += cores
	c.reservedSliceMemMB += memMB
}

// removeSliceLocked returns one (cores, memMB) slice on a node to the
// pool, the inverse of addSliceLocked; c.mu held.
func (c *Cluster) removeSliceLocked(n *Node, cores, memMB int) {
	n.sliceRefs--
	n.sliceCores -= cores
	n.sliceMemMB -= memMB
	c.reservedSliceCores -= cores
	c.reservedSliceMemMB -= memMB
	if n.sliceRefs == 0 && n.healthy && n.reservedBy == 0 {
		c.freeHealthy++
	}
}

// SetHealthScript installs a custom health probe, mirroring the
// yarn.nodemanager.services-running health-script mechanism.
func (c *Cluster) SetHealthScript(fn func(n *Node) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.healthScript = fn
}

// RunHealthChecks executes the health script on every node, updates node
// states and returns the per-node verdicts.
func (c *Cluster) RunHealthChecks() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool, len(c.nodes))
	for _, name := range c.order {
		n := c.nodes[name]
		if c.healthScript != nil {
			verdict := c.healthScript(n)
			c.setHealthLocked(n, verdict)
			n.ag.SetHealthy(verdict)
		}
		out[name] = n.healthy
	}
	return out
}

// SetNodeHealth flips a node's health flag directly (failure injection).
func (c *Cluster) SetNodeHealth(name string, healthy bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	c.setHealthLocked(n, healthy)
	n.ag.SetHealthy(healthy)
	return nil
}

// FailNode schedules a node crash at absolute virtual time at (immediately
// when at is not in the future): the node is marked UNHEALTHY and every live
// container hosted on it is invalidated — its resources are freed and its
// Lost flag is raised so the executor fails the work that was running there
// instead of letting it complete impossibly. It returns ErrUnknownNode for
// unknown names; the crash itself happens asynchronously on the clock.
func (c *Cluster) FailNode(name string, at time.Duration) error {
	c.mu.Lock()
	_, ok := c.nodes[name]
	clock := c.clock
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if clock == nil || at <= clock.Now() {
		c.failNodeNow(name, at)
		return nil
	}
	clock.Schedule(at, func(now time.Duration) { c.failNodeNow(name, now) })
	return nil
}

// failNodeNow performs the crash — node crash is agent death: the agent
// drops every hosted container and local checkpoint replica, and the
// control plane invalidates the matching desired state. It returns the
// number of containers lost.
//
// When the node is partitioned the death is *silent*: the agent dies (its
// actual truth is gone) but its frozen report keeps claiming health, so the
// control plane learns nothing — no desired-state invalidation, no events —
// until Reconcile observes a fresh report after the heal (or the staleness
// bound trips) and detects the crash then.
func (c *Cluster) failNodeNow(name string, at time.Duration) int {
	c.mu.Lock()
	n, ok := c.nodes[name]
	if !ok {
		c.mu.Unlock()
		return 0
	}
	n.ag.Fail()
	if n.ag.Partitioned() {
		c.mu.Unlock()
		return 0
	}
	lost, lostCkpts := c.detectCrashLocked(n, at)
	c.mu.Unlock()
	c.emit(trace.Event{
		Type: trace.EvNodeCrash, Node: name,
		Fields: map[string]float64{"containersLost": float64(lost)},
	})
	for _, key := range lostCkpts {
		c.emit(trace.Event{Type: trace.EvCheckpointLost, Step: key, Node: name})
	}
	return lost
}

// detectCrashLocked applies a node crash to the control plane's desired
// state: believed health flips, every desired container on the node is
// invalidated and the node leaves every non-durable checkpoint's replica
// set. Shared between the immediate crash path (FailNode on a reachable
// node) and reconciler-driven death detection; c.mu held. Returns the lost
// container count and checkpoint keys for post-lock event emission.
func (c *Cluster) detectCrashLocked(n *Node, at time.Duration) (int, []string) {
	c.setHealthLocked(n, false)
	lost := 0
	for id, ctr := range c.live {
		if ctr.NodeName != n.Name {
			continue
		}
		ctr.lostAt.Store(int64(at))
		ctr.lost.Store(true)
		ctr.released = true // resources are gone with the node; Release is a no-op
		delete(c.live, id)
		// Desired bookkeeping only — no kill is sent to the agent: the node
		// is believed dead, and when the belief is premature (a staleness-
		// bound declaration on a surviving agent) the containers live on as
		// zombies until reconciliation fences them after the heal.
		c.dropContainerDesiredLocked(ctr)
		lost++
	}
	n.lastIncarnation = n.ag.Incarnation()
	return lost, c.dropCheckpointReplicasLocked(n.Name)
}

// RestoreNode brings a failed node back (repaired hardware rejoining the
// cluster): a fresh agent incarnation comes up healthy and its capacity
// becomes allocatable again.
//
// A restore asserts a fresh daemon, so any desired state the agent does not
// actually carry is invalidated here: containers the control plane still
// believed in (a silent death behind a partition, never detected) are
// marked lost, and checkpoint replica metadata pointing at copies the disk
// no longer holds is pruned. On every detected-crash path both are already
// empty, which keeps the legacy restore a pure health flip.
func (c *Cluster) RestoreNode(name string) error {
	var now time.Duration
	if c.clock != nil {
		now = c.clock.Now() // before c.mu: the clock has its own lock
	}
	c.mu.Lock()
	n, ok := c.nodes[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	n.ag.Restore()
	n.lastIncarnation = n.ag.Incarnation()
	for id, ctr := range c.live {
		if ctr.NodeName != name || n.ag.Hosts(id) {
			continue
		}
		ctr.lostAt.Store(int64(now))
		ctr.lost.Store(true)
		ctr.released = true
		delete(c.live, id)
		c.dropContainerDesiredLocked(ctr)
	}
	// The restore also re-establishes the command channel, so the agent side
	// is fenced in the same breath: placements the control plane no longer
	// wants (zombies of a premature death declaration) are killed, and
	// replica copies whose checkpoint entry moved on are dropped.
	for _, p := range n.ag.Placements() {
		if ctr, ok := c.live[p.ID]; !ok || ctr.NodeName != name {
			n.ag.Kill(p.ID)
		}
	}
	for _, rep := range n.ag.Replicas() {
		e, ok := c.checkpoints[rep]
		hosted := false
		if ok && !e.durable {
			for _, nn := range e.nodes {
				if nn == name {
					hosted = true
					break
				}
			}
		}
		if !hosted {
			n.ag.DropReplica(rep)
		}
	}
	var lostCkpts []string
	keys := make([]string, 0, len(c.checkpoints))
	for k := range c.checkpoints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := c.checkpoints[k]
		if e.durable || n.ag.HasReplica(k) {
			continue
		}
		kept := e.nodes[:0]
		for _, nn := range e.nodes {
			if nn != name {
				kept = append(kept, nn)
			}
		}
		if len(kept) == len(e.nodes) {
			continue
		}
		e.nodes = kept
		if len(e.nodes) == 0 {
			delete(c.checkpoints, k)
			lostCkpts = append(lostCkpts, k)
		}
	}
	c.setHealthLocked(n, true)
	c.mu.Unlock()
	c.emit(trace.Event{Type: trace.EvNodeRestore, Node: name})
	for _, key := range lostCkpts {
		c.emit(trace.Event{Type: trace.EvCheckpointLost, Step: key, Node: name})
	}
	return nil
}

// LiveContainers returns the number of outstanding (allocated, not released,
// not lost) containers.
func (c *Cluster) LiveContainers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.live)
}

// Nodes returns the cluster's nodes in stable order.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, len(c.order))
	for i, name := range c.order {
		out[i] = c.nodes[name]
	}
	return out
}

// HealthyNodes returns the currently healthy nodes.
func (c *Cluster) HealthyNodes() []*Node {
	var out []*Node
	for _, n := range c.Nodes() {
		if n.Healthy() {
			out = append(out, n)
		}
	}
	return out
}

// Reservation is an exclusive, elastic lease on cluster capacity — the
// admission currency of the multi-workflow scheduler. A run's executor
// allocates its containers only inside its reservation, so admitted runs can
// never starve each other of capacity (and the sum of reservations can never
// exceed the cluster, enforced structurally). Leases come in two shapes:
//
//   - Whole-node (Reserve): the lease holds entire nodes exclusively;
//     sliceCores/sliceMemMB are 0 and containers draw from full node
//     capacity.
//   - Slice (ReserveSlices): the lease holds a uniform per-node
//     (sliceCores, sliceMemMB) slice on each of its nodes, and several
//     slice leases may share one node as long as their summed slices fit
//     within Cores and MemMB*overcommit. AllocateIn confines containers
//     to the slice, tracked per node in the used ledger.
//
// Both shapes are elastic: GrowReservation adds nodes while the run
// executes, ShrinkReservation returns idle nodes to the pool (shrink-at-
// operator-boundary: only nodes with no live containers of the lease may
// leave), ResizeSlice regrows or shrinks the per-node slice dimensions
// independently, and RevokeReservation ends the lease entirely
// (preemption/voluntary release).
type Reservation struct {
	c     *Cluster
	id    int
	nodes []string // stable order; mutated only under c.mu
	// sliceCores/sliceMemMB are the uniform per-node slice dimensions
	// (0,0 = whole-node lease). Guarded by c.mu.
	sliceCores int
	sliceMemMB int
	// used ledgers, per node, the container resources currently allocated
	// under this lease (slice leases only): the O(1)-maintained counters
	// AllocateIn checks slice headroom against. CheckInvariants recomputes
	// the ledger from the live-container table and fails on drift.
	used map[string]*sliceUse
	// released marks the lease revoked; all accessors and elastic ops on a
	// released lease fail or return empty. Guarded by c.mu.
	released bool
}

// sliceUse is a reservation's per-node container-usage ledger entry.
type sliceUse struct {
	cores int
	memMB int
}

// ID returns the reservation's cluster-unique id.
func (r *Reservation) ID() int { return r.id }

// Nodes returns the reserved node names in stable order. It takes the
// cluster lock: the node set of an elastic lease changes under Grow/Shrink,
// so an unlocked read could observe a half-applied resize.
func (r *Reservation) Nodes() []string {
	if r == nil {
		return nil
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	return append([]string(nil), r.nodes...)
}

// Size returns the number of reserved nodes (0 once revoked).
func (r *Reservation) Size() int {
	if r == nil {
		return 0
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	if r.released {
		return 0
	}
	return len(r.nodes)
}

// Released reports whether the lease has been revoked.
func (r *Reservation) Released() bool {
	if r == nil {
		return true
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	return r.released
}

// SliceDims returns the per-node (cores, memMB) slice dimensions of the
// lease; (0, 0) for whole-node leases and once revoked.
func (r *Reservation) SliceDims() (cores, memMB int) {
	if r == nil {
		return 0, 0
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	if r.released {
		return 0, 0
	}
	return r.sliceCores, r.sliceMemMB
}

// Reserve leases n whole healthy, unreserved nodes (first-fit in stable
// node order; nodes hosting slice leases are skipped — whole-node and
// slice leases never coexist on a node). It returns
// ErrInsufficientResources when fewer than n such nodes exist; the
// reservation is atomic.
func (c *Cluster) Reserve(n int) (*Reservation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: invalid reservation size %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var picked []string
	for _, name := range c.order {
		node := c.nodes[name]
		if node.healthy && node.reservedBy == 0 && node.sliceRefs == 0 {
			picked = append(picked, name)
			if len(picked) == n {
				break
			}
		}
	}
	if len(picked) < n {
		return nil, fmt.Errorf("%w: want %d unreserved nodes, have %d", ErrInsufficientResources, n, len(picked))
	}
	c.nextResID++
	res := &Reservation{c: c, id: c.nextResID, nodes: picked}
	for _, name := range picked {
		c.reserveNodeLocked(c.nodes[name], res.id)
	}
	c.reservations[res.id] = res
	return res, nil
}

// ReserveSlices leases a uniform (coresPer, memPer) slice on each of n
// healthy nodes (first-fit in stable node order). A node qualifies when it
// holds no whole-node reservation and its remaining slice headroom — Cores
// minus granted slice cores, MemMB*overcommit minus granted slice memory —
// fits the requested slice, so several slice leases can share one node.
// The reservation is atomic: on ErrInsufficientResources nothing is
// granted.
func (c *Cluster) ReserveSlices(n, coresPer, memPer int) (*Reservation, error) {
	if n <= 0 || coresPer <= 0 || memPer <= 0 {
		return nil, fmt.Errorf("cluster: invalid slice reservation %dx(%dc,%dMB)", n, coresPer, memPer)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	picked := c.sliceFitLocked(n, coresPer, memPer, nil)
	if len(picked) < n {
		return nil, fmt.Errorf("%w: want %d nodes with a (%dc,%dMB) slice free, have %d",
			ErrInsufficientResources, n, coresPer, memPer, len(picked))
	}
	c.nextResID++
	res := &Reservation{
		c: c, id: c.nextResID, nodes: picked,
		sliceCores: coresPer, sliceMemMB: memPer,
		used: make(map[string]*sliceUse, n),
	}
	for _, name := range picked {
		c.addSliceLocked(c.nodes[name], coresPer, memPer)
	}
	c.reservations[res.id] = res
	return res, nil
}

// sliceFitLocked returns up to max node names (stable order) that could
// host one more (coresPer, memPer) slice, excluding nodes in skip; c.mu
// held. max <= 0 means no limit.
func (c *Cluster) sliceFitLocked(max, coresPer, memPer int, skip map[string]bool) []string {
	var picked []string
	for _, name := range c.order {
		node := c.nodes[name]
		if !node.healthy || node.reservedBy != 0 || skip[name] {
			continue
		}
		if node.Cores-node.sliceCores < coresPer || c.memCapLocked(node)-node.sliceMemMB < memPer {
			continue
		}
		picked = append(picked, name)
		if max > 0 && len(picked) == max {
			break
		}
	}
	return picked
}

// SliceFit counts the nodes that could currently host one more
// (coresPer, memPer) slice — the slice analogue of UnreservedHealthy,
// used by policies to clamp slice admissions. O(nodes).
func (c *Cluster) SliceFit(coresPer, memPer int) int {
	if coresPer <= 0 || memPer <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sliceFitLocked(0, coresPer, memPer, nil))
}

// GrowReservation extends a live lease by n more nodes (first-fit in
// stable node order, like Reserve). Whole-node leases take whole healthy
// unreserved nodes; slice leases take one more (sliceCores, sliceMemMB)
// slice on each of n nodes with headroom the lease is not already on. The
// grow is atomic: on ErrInsufficientResources the lease is unchanged. It
// returns the names of the added nodes.
func (c *Cluster) GrowReservation(r *Reservation, n int) ([]string, error) {
	if r == nil {
		return nil, fmt.Errorf("%w: grow", ErrNilReservation)
	}
	if r.c != c {
		return nil, fmt.Errorf("%w: grow of reservation %d", ErrForeignReservation, r.id)
	}
	if n <= 0 {
		return nil, fmt.Errorf("cluster: invalid grow size %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.released {
		return nil, fmt.Errorf("%w: grow of reservation %d", ErrReleasedReservation, r.id)
	}
	if r.sliceCores > 0 {
		held := make(map[string]bool, len(r.nodes))
		for _, name := range r.nodes {
			held[name] = true
		}
		picked := c.sliceFitLocked(n, r.sliceCores, r.sliceMemMB, held)
		if len(picked) < n {
			return nil, fmt.Errorf("%w: want %d nodes with a (%dc,%dMB) slice free, have %d",
				ErrInsufficientResources, n, r.sliceCores, r.sliceMemMB, len(picked))
		}
		for _, name := range picked {
			c.addSliceLocked(c.nodes[name], r.sliceCores, r.sliceMemMB)
			held[name] = true
		}
		// Rebuild the lease's node list in stable cluster order, the same
		// ordering discipline whole-node Grow keeps via back-pointers.
		r.nodes = r.nodes[:0]
		for _, name := range c.order {
			if held[name] {
				r.nodes = append(r.nodes, name)
			}
		}
		return picked, nil
	}
	var picked []string
	for _, name := range c.order {
		node := c.nodes[name]
		if node.healthy && node.reservedBy == 0 && node.sliceRefs == 0 {
			picked = append(picked, name)
			if len(picked) == n {
				break
			}
		}
	}
	if len(picked) < n {
		return nil, fmt.Errorf("%w: want %d unreserved nodes, have %d", ErrInsufficientResources, n, len(picked))
	}
	for _, name := range picked {
		c.reserveNodeLocked(c.nodes[name], r.id)
	}
	// Rebuild the lease's node list in stable cluster order so Grow keeps
	// the same ordering discipline Reserve established.
	r.nodes = r.nodes[:0]
	for _, name := range c.order {
		if c.nodes[name].reservedBy == r.id {
			r.nodes = append(r.nodes, name)
		}
	}
	return picked, nil
}

// ResizeSlice changes a slice lease's per-node dimensions to
// (coresPer, memPer), each dimension growing or shrinking independently on
// every node of the lease at once. Growing a dimension requires headroom
// on all the lease's nodes (atomic: on ErrInsufficientResources nothing
// changes); shrinking a dimension is bounded below by the lease's own
// container usage on each node, so running work is never squeezed out —
// the per-dimension form of shrink-at-operator-boundary semantics. In
// that case the call fails with ErrInsufficientResources and the caller
// retries at a quieter boundary.
func (c *Cluster) ResizeSlice(r *Reservation, coresPer, memPer int) error {
	if r == nil {
		return fmt.Errorf("%w: resize", ErrNilReservation)
	}
	if r.c != c {
		return fmt.Errorf("%w: resize of reservation %d", ErrForeignReservation, r.id)
	}
	if coresPer <= 0 || memPer <= 0 {
		return fmt.Errorf("cluster: invalid slice dimensions (%dc,%dMB)", coresPer, memPer)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.released {
		return fmt.Errorf("%w: resize of reservation %d", ErrReleasedReservation, r.id)
	}
	if r.sliceCores == 0 {
		return fmt.Errorf("%w: resize of reservation %d", ErrWholeNodeReservation, r.id)
	}
	dCores, dMem := coresPer-r.sliceCores, memPer-r.sliceMemMB
	if dCores == 0 && dMem == 0 {
		return nil
	}
	// Validate every node first so the resize applies atomically.
	for _, name := range r.nodes {
		n, ok := c.nodes[name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownNode, name)
		}
		if dCores > 0 && n.Cores-n.sliceCores < dCores {
			return fmt.Errorf("%w: node %s has %d slice cores free, need %d",
				ErrInsufficientResources, name, n.Cores-n.sliceCores, dCores)
		}
		if dMem > 0 && c.memCapLocked(n)-n.sliceMemMB < dMem {
			return fmt.Errorf("%w: node %s has %d slice MB free, need %d",
				ErrInsufficientResources, name, c.memCapLocked(n)-n.sliceMemMB, dMem)
		}
		u := r.used[name]
		if u != nil && (u.cores > coresPer || u.memMB > memPer) {
			return fmt.Errorf("%w: node %s runs (%dc,%dMB) of this lease, cannot shrink slice to (%dc,%dMB)",
				ErrInsufficientResources, name, u.cores, u.memMB, coresPer, memPer)
		}
	}
	for _, name := range r.nodes {
		n := c.nodes[name]
		n.sliceCores += dCores
		n.sliceMemMB += dMem
	}
	c.reservedSliceCores += dCores * len(r.nodes)
	c.reservedSliceMemMB += dMem * len(r.nodes)
	r.sliceCores, r.sliceMemMB = coresPer, memPer
	return nil
}

// ShrinkReservation releases leased nodes back to the pool until the lease
// holds target nodes, but only nodes hosting no live container of this lease
// may leave — the structural form of shrink-at-operator-boundary semantics:
// gang containers are freed between plan steps, so a shrink issued at a step
// boundary always finds its nodes idle, while a shrink racing running work
// simply keeps the busy nodes. Idle nodes are released from the end of the
// stable node order. It returns the names of the released nodes (possibly
// fewer than requested when busy nodes pin the lease above target).
func (c *Cluster) ShrinkReservation(r *Reservation, target int) ([]string, error) {
	if r == nil {
		return nil, fmt.Errorf("%w: shrink", ErrNilReservation)
	}
	if r.c != c {
		return nil, fmt.Errorf("%w: shrink of reservation %d", ErrForeignReservation, r.id)
	}
	if target < 1 {
		return nil, fmt.Errorf("cluster: invalid shrink target %d", target)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.released {
		return nil, fmt.Errorf("%w: shrink of reservation %d", ErrReleasedReservation, r.id)
	}
	busy := make(map[string]bool)
	for _, ctr := range c.live {
		if ctr.resID == r.id {
			busy[ctr.NodeName] = true
		}
	}
	var removed []string
	for i := len(r.nodes) - 1; i >= 0 && len(r.nodes)-len(removed) > target; i-- {
		name := r.nodes[i]
		if busy[name] {
			continue
		}
		removed = append(removed, name)
	}
	if len(removed) == 0 {
		return nil, nil
	}
	drop := make(map[string]bool, len(removed))
	for _, name := range removed {
		drop[name] = true
		n, ok := c.nodes[name]
		if !ok {
			continue
		}
		if r.sliceCores > 0 {
			c.removeSliceLocked(n, r.sliceCores, r.sliceMemMB)
			delete(r.used, name)
		} else if n.reservedBy == r.id {
			c.unreserveNodeLocked(n)
		}
	}
	kept := r.nodes[:0]
	for _, name := range r.nodes {
		if !drop[name] {
			kept = append(kept, name)
		}
	}
	r.nodes = kept
	return removed, nil
}

// RevokeReservation ends a lease: every node returns to the unreserved pool
// and any containers still allocated under the lease are force-released (the
// count is returned — a cooperative preemption that drained at an operator
// boundary revokes with zero). Revoking twice is a safe no-op.
func (c *Cluster) RevokeReservation(r *Reservation) int {
	if r == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.released {
		return 0
	}
	dropped := 0
	for id, ctr := range c.live {
		if ctr.resID != r.id {
			continue
		}
		ctr.released = true
		delete(c.live, id)
		c.dropContainerUsageLocked(ctr)
		dropped++
	}
	c.releaseReservationLocked(r)
	return dropped
}

// dropContainerUsageLocked returns a container's resources to its node and,
// when it was allocated under a slice lease, to the lease's per-node used
// ledger; c.mu held. The agent-side placement is killed too — a safe no-op
// when the agent already dropped it (death took the container first).
func (c *Cluster) dropContainerUsageLocked(ctr *Container) {
	c.dropContainerDesiredLocked(ctr)
	if n, ok := c.nodes[ctr.NodeName]; ok {
		n.ag.Kill(ctr.ID)
	}
}

// dropContainerDesiredLocked is dropContainerUsageLocked without the
// agent-side kill: the desired-view half alone, for paths where the node is
// believed dead and no kill can (or should) be delivered; c.mu held.
func (c *Cluster) dropContainerDesiredLocked(ctr *Container) {
	if n, ok := c.nodes[ctr.NodeName]; ok {
		n.usedCores -= ctr.Cores
		n.usedMemMB -= ctr.MemMB
	}
	if res, ok := c.reservations[ctr.resID]; ok && res.used != nil {
		if u, ok := res.used[ctr.NodeName]; ok {
			u.cores -= ctr.Cores
			u.memMB -= ctr.MemMB
		}
	}
}

// ReleaseReservation returns the leased nodes to the unreserved pool.
// Releasing twice is a safe no-op (idempotent: the released flag and the
// reservation-table entry are cleared together under one critical section,
// so double-release in suspend paths cannot free another lease's nodes).
func (c *Cluster) ReleaseReservation(r *Reservation) {
	if r == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.released {
		return
	}
	c.releaseReservationLocked(r)
}

// releaseReservationLocked clears the lease under c.mu.
func (c *Cluster) releaseReservationLocked(r *Reservation) {
	r.released = true
	if _, ok := c.reservations[r.id]; !ok {
		return
	}
	delete(c.reservations, r.id)
	for _, name := range r.nodes {
		n, ok := c.nodes[name]
		if !ok {
			continue
		}
		if r.sliceCores > 0 {
			c.removeSliceLocked(n, r.sliceCores, r.sliceMemMB)
		} else if n.reservedBy == r.id {
			c.unreserveNodeLocked(n)
		}
	}
}

// UnreservedHealthy counts the healthy nodes not held by any reservation —
// the pool admission policies draw quotas from. O(1): the counter is
// maintained as deltas at every reserve/release/health boundary.
func (c *Cluster) UnreservedHealthy() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.freeHealthy
}

// ReservedNodes counts the nodes currently held by whole-node
// reservations. O(1), like UnreservedHealthy.
func (c *Cluster) ReservedNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reserved
}

// ReservedSlices returns the cluster-wide totals of granted slice capacity
// per dimension (summed over every slice lease's nodes). O(1): both are
// delta counters maintained at each slice reserve/grow/shrink/resize/
// revoke, recomputed from scratch by CheckInvariants.
func (c *Cluster) ReservedSlices() (cores, memMB int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reservedSliceCores, c.reservedSliceMemMB
}

// Allocate grants count containers of (cores, memMB) each, spread over the
// healthy unreserved nodes with a most-free-first policy. Allocation is
// atomic: either all containers are granted or none. (On a cluster with no
// reservations this is every healthy node — the single-workflow behaviour.)
// Nodes hosting slice leases are not part of the pool: slice capacity is
// promised to its leases.
func (c *Cluster) Allocate(count, cores, memMB int) ([]*Container, error) {
	return c.allocateAndEmit(nil, count, cores, memMB)
}

// AllocateIn is Allocate restricted to a reservation: the per-run
// allocation path of the multi-workflow scheduler. Under a whole-node
// lease containers draw from the full capacity of the leased nodes; under
// a slice lease they are confined to the per-node (sliceCores, sliceMemMB)
// slice, tracked in the lease's used ledger.
func (c *Cluster) AllocateIn(r *Reservation, count, cores, memMB int) ([]*Container, error) {
	return c.allocateAndEmit(r, count, cores, memMB)
}

// oomKillInfo records one OOM-killed container for post-lock event
// emission.
type oomKillInfo struct {
	node        string
	containerID int
	memMB       int
	overMB      int
}

// allocateAndEmit runs the allocation under the lock and emits any OOM
// kill events it produced afterwards (tracers may call back into the
// cluster).
func (c *Cluster) allocateAndEmit(r *Reservation, count, cores, memMB int) ([]*Container, error) {
	granted, kills, err := c.allocate(r, count, cores, memMB)
	for _, k := range kills {
		c.emit(trace.Event{
			Type: trace.EvOOMKill, Node: k.node,
			Fields: map[string]float64{
				"containerID": float64(k.containerID),
				"memMB":       float64(k.memMB),
				"overMB":      float64(k.overMB),
			},
		})
	}
	return granted, err
}

// allocate places containers on the healthy nodes the reservation allows
// (nil = the unreserved pool). Memory fit is judged against the node's
// overcommit ceiling; after a successful grant, any touched node whose
// actual usage exceeds *physical* memory consults the OOM-killer hook,
// which may invalidate the node's largest live container (newest on ties)
// until usage fits or the hook declines. Killed containers are returned to
// the caller as granted-but-lost — exactly like a container that died on a
// crashed node — so loss surfaces through the executor's ordinary sweep.
func (c *Cluster) allocate(r *Reservation, count, cores, memMB int) ([]*Container, []oomKillInfo, error) {
	if count <= 0 || cores <= 0 || memMB <= 0 {
		return nil, nil, fmt.Errorf("cluster: invalid request %dx(%dc,%dMB)", count, cores, memMB)
	}
	var now time.Duration
	if c.clock != nil {
		now = c.clock.Now() // before c.mu: the clock has its own lock
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	resID, slice := 0, false
	if r != nil {
		if r.c != c {
			return nil, nil, fmt.Errorf("%w: allocation under reservation %d", ErrForeignReservation, r.id)
		}
		if r.released {
			return nil, nil, fmt.Errorf("%w: %w %d", ErrInsufficientResources, ErrReleasedReservation, r.id)
		}
		resID, slice = r.id, r.sliceCores > 0
	}

	var granted []*Container
	rollback := func() {
		for _, ctr := range granted {
			delete(c.live, ctr.ID)
			c.dropContainerUsageLocked(ctr)
		}
	}
	// down collects nodes whose agent refused the placement (a silently dead
	// agent behind a partition looks healthy to the control plane until the
	// Place bounces — a connection refused, in effect). Such nodes leave the
	// candidate pool for the rest of this allocation.
	var down map[string]bool
	for i := 0; i < count; i++ {
		// Most-free node first, name as tiebreak for determinism. For slice
		// leases "free" means headroom left inside the lease's own slice.
		var best *Node
		var bestFree int
		if slice {
			for _, name := range r.nodes {
				n, ok := c.nodes[name]
				if !ok || !n.healthy || down[name] {
					continue
				}
				var uc, um int
				if u := r.used[name]; u != nil {
					uc, um = u.cores, u.memMB
				}
				if uc+cores > r.sliceCores || um+memMB > r.sliceMemMB {
					continue
				}
				if n.usedCores+cores > n.Cores || n.usedMemMB+memMB > c.memCapLocked(n) {
					continue
				}
				free := r.sliceCores - uc
				if best == nil || free > bestFree || (free == bestFree && n.Name < best.Name) {
					best, bestFree = n, free
				}
			}
		} else {
			for _, name := range c.order {
				n := c.nodes[name]
				if !n.healthy || n.reservedBy != resID || (resID == 0 && n.sliceRefs > 0) || down[name] {
					continue
				}
				if n.usedCores+cores > n.Cores || n.usedMemMB+memMB > c.memCapLocked(n) {
					continue
				}
				if best == nil || n.FreeCores() > bestFree || (n.FreeCores() == bestFree && n.Name < best.Name) {
					best, bestFree = n, n.FreeCores()
				}
			}
		}
		if best == nil {
			rollback()
			return nil, nil, fmt.Errorf("%w: want %dx(%dc,%dMB)", ErrInsufficientResources, count, cores, memMB)
		}
		// Install the container on the node's agent first: the placement is
		// the actual truth, the bookkeeping below the desired mirror. A
		// refusal disqualifies the node and the pick repeats.
		if err := best.ag.Place(agent.Placement{ID: c.nextID + 1, Cores: cores, MemMB: memMB, ResID: resID}); err != nil {
			if down == nil {
				down = make(map[string]bool)
			}
			down[best.Name] = true
			i--
			continue
		}
		best.usedCores += cores
		best.usedMemMB += memMB
		c.nextID++
		ctr := &Container{ID: c.nextID, NodeName: best.Name, Cores: cores, MemMB: memMB, resID: resID}
		if slice {
			u := r.used[best.Name]
			if u == nil {
				u = &sliceUse{}
				r.used[best.Name] = u
			}
			u.cores += cores
			u.memMB += memMB
		}
		c.live[ctr.ID] = ctr
		granted = append(granted, ctr)
	}
	return granted, c.oomSweepLocked(granted, now), nil
}

// oomSweepLocked checks the nodes touched by a successful grant for actual
// usage beyond physical memory and lets the OOM-killer hook invalidate
// victims; c.mu held. Returns the kills for post-lock event emission.
func (c *Cluster) oomSweepLocked(granted []*Container, now time.Duration) []oomKillInfo {
	if c.oomKiller == nil {
		return nil
	}
	var kills []oomKillInfo
	seen := make(map[string]bool, len(granted))
	for _, ctr := range granted {
		if seen[ctr.NodeName] {
			continue
		}
		seen[ctr.NodeName] = true
		n, ok := c.nodes[ctr.NodeName]
		if !ok {
			continue
		}
		for n.usedMemMB > n.MemMB {
			over := n.usedMemMB - n.MemMB
			if !c.oomKiller(n.Name, over) {
				break
			}
			// The kernel heuristic in miniature: kill the biggest consumer,
			// preferring the newest on ties (the container that tipped the
			// node over is the likeliest victim).
			var victim *Container
			for _, cand := range c.live {
				if cand.NodeName != n.Name {
					continue
				}
				if victim == nil || cand.MemMB > victim.MemMB ||
					(cand.MemMB == victim.MemMB && cand.ID > victim.ID) {
					victim = cand
				}
			}
			if victim == nil {
				break
			}
			victim.lostAt.Store(int64(now))
			victim.lost.Store(true)
			victim.released = true
			delete(c.live, victim.ID)
			c.dropContainerUsageLocked(victim)
			kills = append(kills, oomKillInfo{
				node: n.Name, containerID: victim.ID,
				memMB: victim.MemMB, overMB: over,
			})
		}
	}
	return kills
}

// Release returns a container's resources to its node. Releasing twice is a
// safe no-op.
func (c *Cluster) Release(ctr *Container) {
	if ctr == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr.released {
		return
	}
	ctr.released = true
	delete(c.live, ctr.ID)
	c.dropContainerUsageLocked(ctr)
}

// ReleaseAll releases a batch of containers.
func (c *Cluster) ReleaseAll(ctrs []*Container) {
	for _, ctr := range ctrs {
		c.Release(ctr)
	}
}

// Available sums the free resources over healthy nodes.
func (c *Cluster) Available() (cores, memMB int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.healthy {
			cores += n.FreeCores()
			memMB += n.FreeMemMB()
		}
	}
	return cores, memMB
}

// Capacity sums total resources over all nodes, healthy or not.
func (c *Cluster) Capacity() (cores, memMB int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		cores += n.Cores
		memMB += n.MemMB
	}
	return cores, memMB
}

// Utilization returns allocated cores over healthy capacity in [0,1].
func (c *Cluster) Utilization() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total, used := 0, 0
	for _, n := range c.nodes {
		if n.healthy {
			total += n.Cores
			used += n.usedCores
		}
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}

// Clock exposes the cluster's virtual clock.
func (c *Cluster) Clock() *vtime.Clock { return c.clock }

// CheckInvariants verifies resource-accounting invariants; tests call it
// after random allocate/release sequences.
func (c *Cluster) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	// The O(1) scheduling counters must agree with a from-scratch recount —
	// any missed delta on a reserve/release/grow/shrink/resize/revoke/fail/
	// restore path shows up here. The slice recount rebuilds every node's
	// per-dimension slice sums and refcount from the reservation table.
	freeHealthy, reserved := 0, 0
	sliceCores := make(map[string]int)
	sliceMemMB := make(map[string]int)
	sliceRefs := make(map[string]int)
	totSliceCores, totSliceMemMB := 0, 0
	for _, res := range c.reservations {
		if res.sliceCores == 0 {
			continue
		}
		for _, name := range res.nodes {
			sliceCores[name] += res.sliceCores
			sliceMemMB[name] += res.sliceMemMB
			sliceRefs[name]++
			totSliceCores += res.sliceCores
			totSliceMemMB += res.sliceMemMB
		}
	}
	for _, name := range names {
		n := c.nodes[name]
		if n.healthy && n.reservedBy == 0 && n.sliceRefs == 0 {
			freeHealthy++
		}
		if n.reservedBy != 0 {
			reserved++
		}
	}
	if freeHealthy != c.freeHealthy {
		return fmt.Errorf("cluster: freeHealthy counter drifted: have %d, recount %d", c.freeHealthy, freeHealthy)
	}
	if reserved != c.reserved {
		return fmt.Errorf("cluster: reserved counter drifted: have %d, recount %d", c.reserved, reserved)
	}
	if totSliceCores != c.reservedSliceCores || totSliceMemMB != c.reservedSliceMemMB {
		return fmt.Errorf("cluster: slice counters drifted: have (%dc,%dMB), recount (%dc,%dMB)",
			c.reservedSliceCores, c.reservedSliceMemMB, totSliceCores, totSliceMemMB)
	}
	for _, name := range names {
		n := c.nodes[name]
		if n.usedCores < 0 || n.usedMemMB < 0 {
			return fmt.Errorf("cluster: node %s negative usage (%d cores, %d MB)", name, n.usedCores, n.usedMemMB)
		}
		if n.usedCores > n.Cores || n.usedMemMB > c.memCapLocked(n) {
			return fmt.Errorf("cluster: node %s over-allocated (%d/%d cores, %d/%d MB)",
				name, n.usedCores, n.Cores, n.usedMemMB, c.memCapLocked(n))
		}
		if n.sliceCores != sliceCores[name] || n.sliceMemMB != sliceMemMB[name] || n.sliceRefs != sliceRefs[name] {
			return fmt.Errorf("cluster: node %s slice sums drifted: have (%dc,%dMB,%d refs), recount (%dc,%dMB,%d refs)",
				name, n.sliceCores, n.sliceMemMB, n.sliceRefs, sliceCores[name], sliceMemMB[name], sliceRefs[name])
		}
		// Summed slice grants never exceed node capacity per dimension
		// (memory judged against the overcommit ceiling), and whole-node
		// and slice reservations never share a node.
		if n.sliceCores > n.Cores || n.sliceMemMB > c.memCapLocked(n) {
			return fmt.Errorf("cluster: node %s slices oversubscribed (%d/%d cores, %d/%d MB)",
				name, n.sliceCores, n.Cores, n.sliceMemMB, c.memCapLocked(n))
		}
		if n.reservedBy != 0 && n.sliceRefs > 0 {
			return fmt.Errorf("cluster: node %s holds whole-node reservation %d and %d slices", name, n.reservedBy, n.sliceRefs)
		}
		if n.reservedBy != 0 {
			res, ok := c.reservations[n.reservedBy]
			if !ok {
				return fmt.Errorf("cluster: node %s reserved by unknown reservation %d", name, n.reservedBy)
			}
			found := false
			for _, rn := range res.nodes {
				if rn == name {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("cluster: node %s claims reservation %d which does not list it", name, n.reservedBy)
			}
		}
	}
	// Whole-node reservations are disjoint leases: their total size can
	// never exceed the cluster, and every reserved node must point back.
	// Slice reservations instead must list known nodes once each, and their
	// used ledger — the O(1) slice-headroom counters AllocateIn consults —
	// must agree with a from-scratch recount of the live-container table
	// and stay within the slice dimensions.
	reserved = 0
	for id, res := range c.reservations {
		if res.released {
			return fmt.Errorf("cluster: released reservation %d still in the reservation table", id)
		}
		if len(res.nodes) == 0 {
			return fmt.Errorf("cluster: live reservation %d holds no nodes (shrink below 1?)", id)
		}
		seen := make(map[string]bool, len(res.nodes))
		for _, rn := range res.nodes {
			if seen[rn] {
				return fmt.Errorf("cluster: reservation %d lists node %s twice", id, rn)
			}
			seen[rn] = true
			n, ok := c.nodes[rn]
			if !ok {
				return fmt.Errorf("cluster: reservation %d lists unknown node %s", id, rn)
			}
			if res.sliceCores == 0 && n.reservedBy != id {
				return fmt.Errorf("cluster: reservation %d lists node %s held by %d", id, rn, n.reservedBy)
			}
		}
		if res.sliceCores > 0 {
			if res.sliceMemMB <= 0 {
				return fmt.Errorf("cluster: slice reservation %d has dimensions (%dc,%dMB)", id, res.sliceCores, res.sliceMemMB)
			}
			usedNow := make(map[string]sliceUse)
			for _, ctr := range c.live {
				if ctr.resID == id {
					u := usedNow[ctr.NodeName]
					u.cores += ctr.Cores
					u.memMB += ctr.MemMB
					usedNow[ctr.NodeName] = u
				}
			}
			for name, u := range res.used {
				if u.cores == 0 && u.memMB == 0 {
					continue
				}
				if !seen[name] {
					return fmt.Errorf("cluster: reservation %d ledgers usage on node %s it does not hold", id, name)
				}
				if got := usedNow[name]; u.cores != got.cores || u.memMB != got.memMB {
					return fmt.Errorf("cluster: reservation %d ledger drifted on %s: have (%dc,%dMB), recount (%dc,%dMB)",
						id, name, u.cores, u.memMB, got.cores, got.memMB)
				}
				if u.cores > res.sliceCores || u.memMB > res.sliceMemMB {
					return fmt.Errorf("cluster: reservation %d usage (%dc,%dMB) on %s exceeds its slice (%dc,%dMB)",
						id, u.cores, u.memMB, name, res.sliceCores, res.sliceMemMB)
				}
			}
			for name, got := range usedNow {
				u := res.used[name]
				if u == nil && (got.cores != 0 || got.memMB != 0) {
					return fmt.Errorf("cluster: reservation %d runs (%dc,%dMB) on %s with no ledger entry",
						id, got.cores, got.memMB, name)
				}
			}
			continue
		}
		reserved += len(res.nodes)
		// The back-pointer count must match the lease's node list exactly —
		// a grow/shrink that half-applied would break this symmetry.
		backRefs := 0
		for _, name := range c.order {
			if c.nodes[name].reservedBy == id {
				backRefs++
			}
		}
		if backRefs != len(res.nodes) {
			return fmt.Errorf("cluster: reservation %d holds %d nodes but %d nodes point back",
				id, len(res.nodes), backRefs)
		}
	}
	if reserved > len(c.nodes) {
		return fmt.Errorf("cluster: %d reserved nodes exceed cluster size %d", reserved, len(c.nodes))
	}
	// Containers allocated under a still-live reservation must sit on that
	// reservation's nodes.
	for id, ctr := range c.live {
		if ctr.resID == 0 {
			continue
		}
		res, ok := c.reservations[ctr.resID]
		if !ok {
			continue // lease released/crashed away while work drained
		}
		n, ok := c.nodes[ctr.NodeName]
		if !ok {
			return fmt.Errorf("cluster: container %d on unknown node %s", id, ctr.NodeName)
		}
		if res.sliceCores > 0 {
			onLease := false
			for _, rn := range res.nodes {
				if rn == ctr.NodeName {
					onLease = true
					break
				}
			}
			if !onLease {
				return fmt.Errorf("cluster: container %d allocated under slice reservation %d but node %s is not leased",
					id, ctr.resID, ctr.NodeName)
			}
			continue
		}
		if n.reservedBy != ctr.resID {
			return fmt.Errorf("cluster: container %d allocated under reservation %d but node %s is held by %d",
				id, ctr.resID, ctr.NodeName, n.reservedBy)
		}
	}
	// Desired vs actual: whenever the control plane's view of a node is not
	// known-stale — no partition in flight, believed health matching the
	// agent's live truth, no unobserved rebirth — the agent must host
	// exactly the desired containers with exactly the desired usage. Nodes
	// with drift outstanding are skipped; Reconcile converges them and the
	// storm tests assert the full check at every quiescent point.
	for _, name := range names {
		n := c.nodes[name]
		if n.ag.Partitioned() || n.ag.Healthy() != n.healthy || n.ag.Incarnation() != n.lastIncarnation {
			continue
		}
		rep := n.ag.Report()
		if rep.UsedCores != n.usedCores || rep.UsedMemMB != n.usedMemMB {
			return fmt.Errorf("cluster: node %s desired usage (%dc,%dMB) != agent truth (%dc,%dMB)",
				name, n.usedCores, n.usedMemMB, rep.UsedCores, rep.UsedMemMB)
		}
		var desired []int
		for id, ctr := range c.live {
			if ctr.NodeName == name {
				desired = append(desired, id)
			}
		}
		sort.Ints(desired)
		if len(desired) != len(rep.Containers) {
			return fmt.Errorf("cluster: node %s desires %d containers, agent hosts %d",
				name, len(desired), len(rep.Containers))
		}
		for i, id := range desired {
			if rep.Containers[i] != id {
				return fmt.Errorf("cluster: node %s desired container %d not hosted (agent has %d)",
					name, id, rep.Containers[i])
			}
		}
	}
	// Checkpoint entries must hold consistent progress, and non-durable ones
	// must have at least one replica on a known node (entries losing their
	// last replica are deleted in the same critical section as the crash).
	for key, e := range c.checkpoints {
		if e.units <= 0 || e.total <= 0 || e.units > e.total {
			return fmt.Errorf("cluster: checkpoint %q has inconsistent progress %d/%d", key, e.units, e.total)
		}
		if e.durable {
			continue
		}
		if len(e.nodes) == 0 {
			return fmt.Errorf("cluster: non-durable checkpoint %q has no replicas", key)
		}
		for _, nn := range e.nodes {
			n, ok := c.nodes[nn]
			if !ok {
				return fmt.Errorf("cluster: checkpoint %q replicated on unknown node %s", key, nn)
			}
			// When the node is not drifting, its agent must actually host
			// the replica the store metadata claims.
			if n.ag.Partitioned() || n.ag.Healthy() != n.healthy || n.ag.Incarnation() != n.lastIncarnation {
				continue
			}
			hosted := false
			for _, k := range n.ag.Report().Replicas {
				if k == key {
					hosted = true
					break
				}
			}
			if !hosted {
				return fmt.Errorf("cluster: checkpoint %q lists replica on %s but the agent does not host it", key, nn)
			}
		}
	}
	return nil
}
