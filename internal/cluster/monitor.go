package cluster

import (
	"sort"
	"sync"
	"time"

	"github.com/asap-project/ires/internal/engine"
)

// Monitor is the execution monitor of the IReS executor layer: it
// periodically runs the cluster health checks and polls engine service
// availability, keeping a status board the planner and executor consult
// (unavailable engines are excluded from planning; failures during
// execution trigger replanning).
type Monitor struct {
	mu      sync.Mutex
	cluster *Cluster
	env     *engine.Environment
	period  time.Duration

	nodeHealth map[string]bool
	services   map[string]bool
	started    bool
	ticks      int
	cbSeq      int
	onChange   []monitorCB
}

type monitorCB struct {
	id int
	fn func()
}

// NewMonitor builds a monitor over the cluster and engine environment,
// polling with the given virtual-time period.
func NewMonitor(c *Cluster, env *engine.Environment, period time.Duration) *Monitor {
	return &Monitor{
		cluster:    c,
		env:        env,
		period:     period,
		nodeHealth: make(map[string]bool),
		services:   make(map[string]bool),
	}
}

// OnChange registers a callback fired (synchronously, during Poll) whenever
// a node or service changes status. Multiple callbacks may be registered;
// they fire in registration order. The returned function deregisters the
// callback — per-run executors subscribe for the duration of one Execute,
// so a long-lived scheduler does not accumulate dead subscriptions.
func (m *Monitor) OnChange(fn func()) (remove func()) {
	if fn == nil {
		return func() {}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cbSeq++
	id := m.cbSeq
	m.onChange = append(m.onChange, monitorCB{id: id, fn: fn})
	return func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, cb := range m.onChange {
			if cb.id == id {
				m.onChange = append(m.onChange[:i], m.onChange[i+1:]...)
				return
			}
		}
	}
}

// Start schedules periodic polls on the cluster's virtual clock. It is
// idempotent.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	m.Poll()
	m.scheduleNext()
}

func (m *Monitor) scheduleNext() {
	clock := m.cluster.Clock()
	if clock == nil {
		return
	}
	clock.After(m.period, func(time.Duration) {
		m.Poll()
		m.scheduleNext()
	})
}

// Poll runs one monitoring round immediately and returns whether any status
// changed.
func (m *Monitor) Poll() bool {
	health := m.cluster.RunHealthChecks()

	m.mu.Lock()
	changed := false
	for node, ok := range health {
		if prev, seen := m.nodeHealth[node]; !seen || prev != ok {
			changed = true
		}
		m.nodeHealth[node] = ok
	}
	if m.env != nil {
		for _, name := range m.env.Engines() {
			on := m.env.Available(name)
			if prev, seen := m.services[name]; !seen || prev != on {
				changed = true
			}
			m.services[name] = on
		}
	}
	m.ticks++
	cbs := append([]monitorCB{}, m.onChange...)
	m.mu.Unlock()

	if changed {
		for _, cb := range cbs {
			cb.fn()
		}
	}
	return changed
}

// NodeHealthy returns the last observed health of a node (false when never
// observed).
func (m *Monitor) NodeHealthy(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nodeHealth[name]
}

// ServiceOn returns the last observed availability of an engine service.
func (m *Monitor) ServiceOn(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.services[name]
}

// AvailableEngines lists engines last observed ON, sorted by name (map
// iteration order would otherwise make the listing nondeterministic).
func (m *Monitor) AvailableEngines() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for name, on := range m.services {
		if on {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Ticks reports the number of completed polls.
func (m *Monitor) Ticks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ticks
}
