package cluster

import (
	"sort"
	"sync"
	"time"

	"github.com/asap-project/ires/internal/agent"
	"github.com/asap-project/ires/internal/engine"
)

// Monitor is the execution monitor of the IReS executor layer: it
// periodically runs the cluster health checks and polls engine service
// availability, keeping a status board the planner and executor consult
// (unavailable engines are excluded from planning; failures during
// execution trigger replanning).
type Monitor struct {
	mu      sync.Mutex
	cluster *Cluster
	env     *engine.Environment
	period  time.Duration

	nodeHealth map[string]bool
	reports    map[string]agent.Report
	services   map[string]bool
	started    bool
	ticks      int
	cbSeq      int
	onChange   []monitorCB
}

type monitorCB struct {
	id int
	fn func()
}

// NewMonitor builds a monitor over the cluster and engine environment,
// polling with the given virtual-time period.
func NewMonitor(c *Cluster, env *engine.Environment, period time.Duration) *Monitor {
	return &Monitor{
		cluster:    c,
		env:        env,
		period:     period,
		nodeHealth: make(map[string]bool),
		reports:    make(map[string]agent.Report),
		services:   make(map[string]bool),
	}
}

// OnChange registers a callback fired (synchronously, during Poll) whenever
// a node or service changes status. Multiple callbacks may be registered;
// they fire in registration order. The returned function deregisters the
// callback — per-run executors subscribe for the duration of one Execute,
// so a long-lived scheduler does not accumulate dead subscriptions. Removal
// is effective immediately, even from inside another callback of the same
// poll: Poll re-checks each subscription's liveness right before invoking
// it, so a callback removed mid-round never fires again.
func (m *Monitor) OnChange(fn func()) (remove func()) {
	if fn == nil {
		return func() {}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cbSeq++
	id := m.cbSeq
	m.onChange = append(m.onChange, monitorCB{id: id, fn: fn})
	return func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, cb := range m.onChange {
			if cb.id == id {
				m.onChange = append(m.onChange[:i], m.onChange[i+1:]...)
				return
			}
		}
	}
}

// Start schedules periodic polls on the cluster's virtual clock. It is
// idempotent.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	m.Poll()
	m.scheduleNext()
}

func (m *Monitor) scheduleNext() {
	clock := m.cluster.Clock()
	if clock == nil {
		return
	}
	clock.After(m.period, func(time.Duration) {
		m.Poll()
		m.scheduleNext()
	})
}

// Poll runs one monitoring round immediately and returns whether any status
// changed. Node status comes from the agents' published reports — the
// heartbeat channel — so a partitioned node keeps its last-known (frozen)
// status on the board until the partition heals, exactly the stale view a
// real resource manager would hold.
func (m *Monitor) Poll() bool {
	m.cluster.RunHealthChecks()
	reports := m.cluster.AgentReports()

	m.mu.Lock()
	changed := false
	for _, rep := range reports {
		if prev, seen := m.nodeHealth[rep.Node]; !seen || prev != rep.Healthy {
			changed = true
		}
		m.nodeHealth[rep.Node] = rep.Healthy
		m.reports[rep.Node] = rep
	}
	if m.env != nil {
		for _, name := range m.env.Engines() {
			on := m.env.Available(name)
			if prev, seen := m.services[name]; !seen || prev != on {
				changed = true
			}
			m.services[name] = on
		}
	}
	m.ticks++
	cbs := append([]monitorCB{}, m.onChange...)
	m.mu.Unlock()

	if changed {
		for _, cb := range cbs {
			// A callback may deregister others (an executor finishing tears
			// its subscription down from inside a peer's notification), so
			// each one's liveness is re-checked under the lock immediately
			// before it fires instead of trusting the snapshot above.
			m.mu.Lock()
			alive := false
			for _, live := range m.onChange {
				if live.id == cb.id {
					alive = true
					break
				}
			}
			m.mu.Unlock()
			if alive {
				cb.fn()
			}
		}
	}
	return changed
}

// NodeReport returns the last agent report observed for the node (zero
// report, false when the node was never polled).
func (m *Monitor) NodeReport(name string) (agent.Report, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep, ok := m.reports[name]
	return rep, ok
}

// NodeHealthy returns the last observed health of a node (false when never
// observed).
func (m *Monitor) NodeHealthy(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nodeHealth[name]
}

// ServiceOn returns the last observed availability of an engine service.
func (m *Monitor) ServiceOn(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.services[name]
}

// AvailableEngines lists engines last observed ON, sorted by name (map
// iteration order would otherwise make the listing nondeterministic).
func (m *Monitor) AvailableEngines() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for name, on := range m.services {
		if on {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Ticks reports the number of completed polls.
func (m *Monitor) Ticks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ticks
}
