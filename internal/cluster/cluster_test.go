package cluster

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/vtime"
)

func newTestCluster() *Cluster {
	return New(vtime.NewClock(), 4, 8, 16384)
}

func TestAllocateRelease(t *testing.T) {
	c := newTestCluster()
	ctrs, err := c.Allocate(4, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctrs) != 4 {
		t.Fatalf("got %d containers", len(ctrs))
	}
	cores, _ := c.Available()
	if cores != 4*8-8 {
		t.Fatalf("available cores = %d", cores)
	}
	c.ReleaseAll(ctrs)
	cores, mem := c.Available()
	if cores != 32 || mem != 4*16384 {
		t.Fatalf("after release: %d cores %d MB", cores, mem)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateSpreads(t *testing.T) {
	c := newTestCluster()
	ctrs, err := c.Allocate(4, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, ctr := range ctrs {
		seen[ctr.NodeName]++
	}
	if len(seen) != 4 {
		t.Fatalf("containers not spread: %v", seen)
	}
}

func TestAllocateAtomicRollback(t *testing.T) {
	c := newTestCluster()
	// 5 containers of 8 cores cannot fit on 4 nodes of 8 cores.
	if _, err := c.Allocate(5, 8, 1024); !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("err = %v", err)
	}
	cores, _ := c.Available()
	if cores != 32 {
		t.Fatalf("failed allocation leaked resources: %d cores free", cores)
	}
}

func TestAllocateInvalid(t *testing.T) {
	c := newTestCluster()
	for _, req := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}} {
		if _, err := c.Allocate(req[0], req[1], req[2]); err == nil {
			t.Fatalf("invalid request %v accepted", req)
		}
	}
}

func TestDoubleReleaseSafe(t *testing.T) {
	c := newTestCluster()
	ctrs, err := c.Allocate(1, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(ctrs[0])
	c.Release(ctrs[0])
	c.Release(nil)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	cores, _ := c.Available()
	if cores != 32 {
		t.Fatalf("double release corrupted accounting: %d", cores)
	}
}

func TestUnhealthyNodesSkipped(t *testing.T) {
	c := newTestCluster()
	if err := c.SetNodeHealth("node0", false); err != nil {
		t.Fatal(err)
	}
	if err := c.SetNodeHealth("missing", false); err == nil {
		t.Fatal("unknown node accepted")
	}
	ctrs, err := c.Allocate(4, 8, 1024) // exactly fills remaining 3... should fail
	if err == nil {
		// 4 containers x 8 cores over 3 healthy nodes of 8 cores: impossible.
		t.Fatalf("allocation on unhealthy cluster succeeded: %v", ctrs)
	}
	ctrs, err = c.Allocate(3, 8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctr := range ctrs {
		if ctr.NodeName == "node0" {
			t.Fatal("container placed on unhealthy node")
		}
	}
	if len(c.HealthyNodes()) != 3 {
		t.Fatal("HealthyNodes wrong")
	}
}

func TestHealthScript(t *testing.T) {
	c := newTestCluster()
	c.SetHealthScript(func(n *Node) bool { return n.Name != "node2" })
	verdicts := c.RunHealthChecks()
	if verdicts["node2"] || !verdicts["node0"] {
		t.Fatalf("verdicts = %v", verdicts)
	}
	if n := c.Nodes()[2]; n.Healthy() {
		t.Fatal("health script result not applied")
	}
}

func TestUtilizationAndCapacity(t *testing.T) {
	c := newTestCluster()
	if u := c.Utilization(); u != 0 {
		t.Fatalf("idle utilization = %v", u)
	}
	ctrs, _ := c.Allocate(4, 4, 1024)
	if u := c.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	cores, mem := c.Capacity()
	if cores != 32 || mem != 65536 {
		t.Fatalf("capacity = %d/%d", cores, mem)
	}
	c.ReleaseAll(ctrs)
}

func TestMonitorPolling(t *testing.T) {
	clock := vtime.NewClock()
	c := New(clock, 2, 4, 4096)
	env := engine.NewDefaultEnvironment(1)
	m := NewMonitor(c, env, 10*time.Second)

	var changes int
	m.OnChange(func() { changes++ })
	m.Start()
	m.Start() // idempotent

	if !m.NodeHealthy("node0") || !m.ServiceOn(engine.EngineSpark) {
		t.Fatal("initial poll missing statuses")
	}
	first := changes

	// Kill a service and a node; the next periodic poll must notice.
	env.SetAvailable(engine.EngineSpark, false)
	c.SetNodeHealth("node1", false)
	clock.Advance(10 * time.Second)

	if m.ServiceOn(engine.EngineSpark) {
		t.Fatal("dead service still reported ON")
	}
	if m.NodeHealthy("node1") {
		t.Fatal("dead node still reported healthy")
	}
	if changes <= first {
		t.Fatal("OnChange not fired")
	}
	if m.Ticks() < 2 {
		t.Fatalf("ticks = %d", m.Ticks())
	}
	found := false
	for _, e := range m.AvailableEngines() {
		if e == engine.EngineSpark {
			t.Fatal("Spark listed available")
		}
		if e == engine.EngineJava {
			found = true
		}
	}
	if !found {
		t.Fatal("Java missing from available engines")
	}
}

// Property: any random allocate/release sequence keeps accounting sane, and
// full release restores full capacity.
func TestQuickAccountingInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(vtime.NewClock(), r.Intn(6)+1, r.Intn(8)+1, (r.Intn(8)+1)*1024)
		var live []*Container
		for i := 0; i < 50; i++ {
			if r.Intn(2) == 0 || len(live) == 0 {
				ctrs, err := c.Allocate(r.Intn(3)+1, r.Intn(4)+1, (r.Intn(4)+1)*256)
				if err == nil {
					live = append(live, ctrs...)
				}
			} else {
				j := r.Intn(len(live))
				c.Release(live[j])
				live = append(live[:j], live[j+1:]...)
			}
			if c.CheckInvariants() != nil {
				return false
			}
		}
		for _, ctr := range live {
			c.Release(ctr)
		}
		freeC, freeM := c.Available()
		capC, capM := c.Capacity()
		return freeC == capC && freeM == capM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFailNodeInvalidatesLiveContainers(t *testing.T) {
	clock := vtime.NewClock()
	c := New(clock, 4, 2, 4096)
	ctrs, err := c.Allocate(4, 2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.LiveContainers(); got != 4 {
		t.Fatalf("live containers = %d, want 4", got)
	}

	// Crash scheduled in the future must not fire early.
	if err := c.FailNode(ctrs[0].NodeName, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if ctrs[0].Lost() {
		t.Fatal("container lost before the crash time")
	}
	clock.Advance(10 * time.Second)
	if !ctrs[0].Lost() {
		t.Fatal("container on failed node not invalidated")
	}
	if got, want := ctrs[0].LostAt(), 10*time.Second; got != want {
		t.Fatalf("LostAt = %v, want %v", got, want)
	}
	for _, ctr := range ctrs[1:] {
		if ctr.Lost() {
			t.Fatalf("container on healthy node %s invalidated", ctr.NodeName)
		}
	}
	// The lost container no longer holds resources and left the live set.
	if got := c.LiveContainers(); got != 3 {
		t.Fatalf("live containers after crash = %d, want 3", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Restore brings the capacity back.
	if err := c.RestoreNode(ctrs[0].NodeName); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate(1, 2, 2048); err != nil {
		t.Fatalf("allocation on restored node failed: %v", err)
	}

	// Double release of a lost container stays safe.
	c.ReleaseAll(ctrs)
	c.ReleaseAll(ctrs)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFailNodeUnknown(t *testing.T) {
	c := New(vtime.NewClock(), 2, 2, 4096)
	if err := c.FailNode("node99", 0); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if err := c.RestoreNode("node99"); err == nil {
		t.Fatal("RestoreNode accepted an unknown node")
	}
}

func TestMonitorMultipleSubscribers(t *testing.T) {
	clock := vtime.NewClock()
	c := New(clock, 2, 2, 4096)
	env := engine.NewDefaultEnvironment(1)
	m := NewMonitor(c, env, 10*time.Second)
	m.Start()

	var calls []string
	m.OnChange(func() { calls = append(calls, "a") })
	m.OnChange(func() { calls = append(calls, "b") })
	m.OnChange(nil) // must be ignored

	if err := c.FailNode("node1", 12*time.Second); err != nil {
		t.Fatal(err)
	}
	clock.Advance(30 * time.Second)
	if len(calls) < 2 || calls[0] != "a" || calls[1] != "b" {
		t.Fatalf("subscribers fired %v, want a then b", calls)
	}
	if m.NodeHealthy("node1") {
		t.Fatal("monitor did not observe the crash")
	}
}
