package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/asap-project/ires/internal/vtime"
)

func TestReserveRelease(t *testing.T) {
	c := newTestCluster() // 4 nodes
	r, err := c.Reserve(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 2 || len(r.Nodes()) != 2 {
		t.Fatalf("reservation size = %d, want 2", r.Size())
	}
	if got := c.ReservedNodes(); got != 2 {
		t.Fatalf("ReservedNodes = %d, want 2", got)
	}
	if got := c.UnreservedHealthy(); got != 2 {
		t.Fatalf("UnreservedHealthy = %d, want 2", got)
	}
	// Only two unreserved nodes remain.
	if _, err := c.Reserve(3); !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("Reserve(3) on 2 free nodes: err = %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	c.ReleaseReservation(r)
	c.ReleaseReservation(r) // double release is a no-op
	if got := c.ReservedNodes(); got != 0 {
		t.Fatalf("ReservedNodes after release = %d, want 0", got)
	}
	if _, err := c.Reserve(4); err != nil {
		t.Fatalf("full-cluster reservation after release: %v", err)
	}
}

func TestReserveInvalidAndUnhealthy(t *testing.T) {
	c := newTestCluster()
	if _, err := c.Reserve(0); err == nil {
		t.Fatal("Reserve(0) accepted")
	}
	if err := c.SetNodeHealth("node1", false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reserve(4); !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("Reserve(4) with one node down: err = %v", err)
	}
	r, err := c.Reserve(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Nodes() {
		if n == "node1" {
			t.Fatal("unhealthy node leased")
		}
	}
}

// Containers allocated inside a reservation land only on its nodes, and the
// unreserved pool never bleeds into a lease (or vice versa).
func TestAllocateInConfinement(t *testing.T) {
	c := newTestCluster() // 4 nodes x (8c, 16384MB)
	r, err := c.Reserve(2)
	if err != nil {
		t.Fatal(err)
	}
	leased := map[string]bool{}
	for _, n := range r.Nodes() {
		leased[n] = true
	}
	in, err := c.AllocateIn(r, 4, 4, 8192) // needs both lease nodes
	if err != nil {
		t.Fatal(err)
	}
	for _, ctr := range in {
		if !leased[ctr.NodeName] {
			t.Fatalf("reserved allocation landed on unleased node %s", ctr.NodeName)
		}
	}
	out, err := c.Allocate(4, 4, 8192) // fills the two unreserved nodes
	if err != nil {
		t.Fatal(err)
	}
	for _, ctr := range out {
		if leased[ctr.NodeName] {
			t.Fatalf("unreserved allocation landed on leased node %s", ctr.NodeName)
		}
	}
	// The lease is full; more lease-confined demand must fail atomically
	// even though the cluster as a whole is also full here — so drain the
	// unreserved pool first and retry to prove the failure is lease-local.
	c.ReleaseAll(out)
	if _, err := c.AllocateIn(r, 1, 8, 8192); !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("over-lease allocation: err = %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// nil reservation falls back to the unreserved pool.
	free, err := c.AllocateIn(nil, 1, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if leased[free[0].NodeName] {
		t.Fatal("nil-reservation allocation landed on a leased node")
	}
}

// A node crash inside a reservation kills its containers but leaves the
// accounting consistent; releasing the lease afterwards restores the pool.
func TestReservationSurvivesNodeCrash(t *testing.T) {
	clock := vtime.NewClock()
	c := New(clock, 4, 8, 16384)
	r, err := c.Reserve(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllocateIn(r, 2, 4, 8192); err != nil {
		t.Fatal(err)
	}
	victim := r.Nodes()[0]
	if err := c.FailNode(victim, 0); err != nil {
		t.Fatal(err)
	}
	clock.Advance(0)
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after crash in lease: %v", err)
	}
	// The crashed node stays leased (the run's admission slot is unchanged)
	// but hosts no containers; allocation inside the lease uses survivors.
	if got := c.ReservedNodes(); got != 2 {
		t.Fatalf("ReservedNodes after crash = %d, want 2", got)
	}
	if _, err := c.AllocateIn(r, 1, 4, 8192); err != nil {
		t.Fatal(err)
	}
	c.ReleaseReservation(r)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := c.UnreservedHealthy(); got != 3 {
		t.Fatalf("UnreservedHealthy after release = %d, want 3 (one node dead)", got)
	}
}

// Randomized reserve/allocate/release/crash sequences keep CheckInvariants
// true and never over-reserve the cluster.
func TestReservationQuickInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	clock := vtime.NewClock()
	c := New(clock, 6, 8, 16384)
	type lease struct {
		r    *Reservation
		ctrs []*Container
	}
	var leases []*lease
	for step := 0; step < 400; step++ {
		switch rng.Intn(5) {
		case 0: // reserve
			if r, err := c.Reserve(1 + rng.Intn(3)); err == nil {
				leases = append(leases, &lease{r: r})
			}
		case 1: // allocate inside a random lease
			if len(leases) > 0 {
				l := leases[rng.Intn(len(leases))]
				if ctrs, err := c.AllocateIn(l.r, 1+rng.Intn(2), 1+rng.Intn(4), 1024*(1+rng.Intn(4))); err == nil {
					l.ctrs = append(l.ctrs, ctrs...)
				}
			}
		case 2: // release a random lease and its containers
			if len(leases) > 0 {
				i := rng.Intn(len(leases))
				l := leases[i]
				c.ReleaseAll(l.ctrs)
				c.ReleaseReservation(l.r)
				leases = append(leases[:i], leases[i+1:]...)
			}
		case 3: // crash/restore a random node
			name := c.Nodes()[rng.Intn(6)].Name
			if rng.Intn(2) == 0 {
				c.FailNode(name, clock.Now())
				clock.Advance(0)
			} else {
				c.RestoreNode(name)
			}
		case 4: // unreserved allocation noise
			if ctrs, err := c.Allocate(1, 1+rng.Intn(4), 2048); err == nil {
				c.ReleaseAll(ctrs)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if got := c.ReservedNodes(); got > 6 {
			t.Fatalf("step %d: %d reserved nodes on a 6-node cluster", step, got)
		}
	}
}
