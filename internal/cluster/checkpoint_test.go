package cluster

import (
	"testing"
	"time"

	"github.com/asap-project/ires/internal/trace"
)

func TestPutCheckpointMonotonicMaxWins(t *testing.T) {
	c := newTestCluster()
	key := "op1/rank"
	c.PutCheckpoint(key, "pagerank", 5, 40, []string{"node0"}, true)
	// A slow original banking an older boundary cannot roll progress back.
	c.PutCheckpoint(key, "pagerank", 3, 40, []string{"node0"}, true)
	if got := c.CheckpointProgress(key, "pagerank", 40); got != 5 {
		t.Fatalf("progress = %d after stale write, want 5", got)
	}
	c.PutCheckpoint(key, "pagerank", 7, 40, []string{"node0"}, true)
	if got := c.CheckpointProgress(key, "pagerank", 40); got != 7 {
		t.Fatalf("progress = %d, want 7", got)
	}
	if n := c.Checkpoints(); n != 1 {
		t.Fatalf("%d entries stored, want 1", n)
	}
}

func TestPutCheckpointReplacesOnComputationChange(t *testing.T) {
	c := newTestCluster()
	key := "op1/rank"
	c.PutCheckpoint(key, "pagerank", 30, 40, nil, true)

	// A different algorithm replaces the entry even at lower units: stale
	// progress from an abandoned implementation must not seed it.
	c.PutCheckpoint(key, "kmeans", 2, 40, nil, true)
	if got := c.CheckpointProgress(key, "pagerank", 40); got != 0 {
		t.Fatalf("pagerank progress = %d after kmeans replaced it, want 0", got)
	}
	if got := c.CheckpointProgress(key, "kmeans", 40); got != 2 {
		t.Fatalf("kmeans progress = %d, want 2", got)
	}

	// Same algorithm but a different total is likewise a different run shape.
	c.PutCheckpoint(key, "kmeans", 1, 10, nil, true)
	if got := c.CheckpointProgress(key, "kmeans", 40); got != 0 {
		t.Fatalf("total=40 progress = %d after total changed to 10, want 0", got)
	}
	if alg, units, total, ok := c.CheckpointInfo(key); !ok || alg != "kmeans" || units != 1 || total != 10 {
		t.Fatalf("CheckpointInfo = %q %d/%d ok=%v, want kmeans 1/10", alg, units, total, ok)
	}
}

func TestPutCheckpointRejectsDegenerateArgs(t *testing.T) {
	c := newTestCluster()
	c.PutCheckpoint("", "a", 1, 2, nil, true)   // empty key
	c.PutCheckpoint("k", "a", 0, 2, nil, true)  // no progress
	c.PutCheckpoint("k", "a", -1, 2, nil, true) // negative progress
	c.PutCheckpoint("k", "a", 1, 0, nil, true)  // no total
	c.PutCheckpoint("k", "a", 3, 2, nil, true)  // units beyond total
	if n := c.Checkpoints(); n != 0 {
		t.Fatalf("%d entries stored from degenerate writes, want 0", n)
	}
	if got := c.CheckpointProgress("k", "a", 2); got != 0 {
		t.Fatalf("progress = %d, want 0", got)
	}
}

func TestClearCheckpoint(t *testing.T) {
	c := newTestCluster()
	c.PutCheckpoint("k", "a", 1, 2, nil, true)
	c.ClearCheckpoint("k")
	if n := c.Checkpoints(); n != 0 {
		t.Fatalf("%d entries after clear, want 0", n)
	}
}

// lostEvents returns the EvCheckpointLost steps recorded so far.
func lostEvents(rec *trace.Recorder) []string {
	var lost []string
	for _, ev := range rec.Events() {
		if ev.Type == trace.EvCheckpointLost {
			lost = append(lost, ev.Step)
		}
	}
	return lost
}

func TestDurableCheckpointSurvivesNodeCrash(t *testing.T) {
	c := newTestCluster()
	rec := trace.NewRecorder(0)
	c.SetTracer(rec)
	c.PutCheckpoint("op/rank", "pagerank", 10, 40, []string{"node0", "node1"}, true)
	c.failNodeNow("node0", time.Second)
	c.failNodeNow("node1", 2*time.Second)
	if got := c.CheckpointProgress("op/rank", "pagerank", 40); got != 10 {
		t.Fatalf("durable progress = %d after crashes, want 10", got)
	}
	if lost := lostEvents(rec); len(lost) != 0 {
		t.Fatalf("durable checkpoint reported lost: %v", lost)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatedCheckpointDiesWithLastReplica(t *testing.T) {
	c := newTestCluster()
	rec := trace.NewRecorder(0)
	c.SetTracer(rec)
	c.PutCheckpoint("op/rank", "pagerank", 10, 40, []string{"node0", "node1"}, false)

	// First replica crash: the other copy keeps the progress alive.
	c.failNodeNow("node0", time.Second)
	if got := c.CheckpointProgress("op/rank", "pagerank", 40); got != 10 {
		t.Fatalf("progress = %d with one replica left, want 10", got)
	}
	if lost := lostEvents(rec); len(lost) != 0 {
		t.Fatalf("loss reported while a replica survives: %v", lost)
	}

	// Last replica crash: the entry is gone and the loss is visible.
	c.failNodeNow("node1", 2*time.Second)
	if got := c.CheckpointProgress("op/rank", "pagerank", 40); got != 0 {
		t.Fatalf("progress = %d after last replica died, want 0", got)
	}
	if n := c.Checkpoints(); n != 0 {
		t.Fatalf("%d entries after total loss, want 0", n)
	}
	lost := lostEvents(rec)
	if len(lost) != 1 || lost[0] != "op/rank" {
		t.Fatalf("lost events = %v, want exactly [op/rank]", lost)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
