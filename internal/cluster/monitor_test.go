package cluster

import (
	"testing"
	"time"

	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/vtime"
)

// Regression: a subscription removed from inside another OnChange callback
// of the same poll must not fire in that poll (or ever after). The old
// implementation fired from a snapshot taken before the callbacks ran, so a
// removal during the round was silently ignored until the next one.
func TestMonitorOnChangeRemovalDuringPoll(t *testing.T) {
	clock := vtime.NewClock()
	c := New(clock, 2, 2, 4096)
	m := NewMonitor(c, nil, 10*time.Second)
	m.Poll() // seed the board so the next poll reports a change

	var fired []string
	var removeB func()
	m.OnChange(func() {
		fired = append(fired, "a")
		removeB()
	})
	removeB = m.OnChange(func() { fired = append(fired, "b") })

	if err := c.SetNodeHealth("node1", false); err != nil {
		t.Fatal(err)
	}
	if !m.Poll() {
		t.Fatal("health flip not observed")
	}
	if len(fired) != 1 || fired[0] != "a" {
		t.Fatalf("callbacks fired %v, want [a] (b was removed mid-poll)", fired)
	}

	// And b stays gone on later polls too.
	if err := c.SetNodeHealth("node1", true); err != nil {
		t.Fatal(err)
	}
	m.Poll()
	if len(fired) != 2 || fired[1] != "a" {
		t.Fatalf("callbacks fired %v, want [a a]", fired)
	}
}

// The monitor's node board is fed by agent reports, so a partitioned node
// keeps its last-known status — even across a silent death — until the
// partition heals and a fresh report flows.
func TestMonitorReadsAgentReports(t *testing.T) {
	clock := vtime.NewClock()
	c := New(clock, 2, 2, 4096)
	env := engine.NewDefaultEnvironment(1)
	m := NewMonitor(c, env, 10*time.Second)
	m.Poll()

	if rep, ok := m.NodeReport("node1"); !ok || !rep.Healthy || rep.Stale {
		t.Fatalf("initial report = %+v, %v", rep, ok)
	}

	if err := c.PartitionNode("node1"); err != nil {
		t.Fatal(err)
	}
	if err := c.FailNode("node1", 0); err != nil {
		t.Fatal(err)
	}
	if m.Poll() {
		t.Fatal("poll saw a change through the partition")
	}
	if !m.NodeHealthy("node1") {
		t.Fatal("partitioned node's frozen health not kept on the board")
	}
	if rep, _ := m.NodeReport("node1"); !rep.Stale {
		t.Fatalf("report behind partition not marked stale: %+v", rep)
	}

	if err := c.HealPartition("node1"); err != nil {
		t.Fatal(err)
	}
	if !m.Poll() {
		t.Fatal("healed death not observed")
	}
	if m.NodeHealthy("node1") {
		t.Fatal("dead node still healthy on the board after heal")
	}
}
