package pegasus

import (
	"testing"
	"testing/quick"
)

func TestGenerateAllCategories(t *testing.T) {
	for _, cat := range Categories() {
		for _, size := range []int{30, 100, 500, 1000} {
			g, err := Generate(cat, size)
			if err != nil {
				t.Fatalf("%s/%d: %v", cat, size, err)
			}
			ops := OperatorCount(g)
			lo, hi := size*70/100, size*130/100
			if ops < lo || ops > hi {
				t.Errorf("%s/%d: %d operators outside [%d,%d]", cat, size, ops, lo, hi)
			}
			if _, err := g.Topological(); err != nil {
				t.Errorf("%s/%d: %v", cat, size, err)
			}
			if len(Algorithms(g)) < 3 {
				t.Errorf("%s/%d: too few distinct algorithms", cat, size)
			}
		}
	}
}

func TestMontageIsMostConnected(t *testing.T) {
	// The Montage signature: some operator has in-degree proportional to
	// the parallel width (mConcatFit reads every mDiffFit output).
	g, err := Generate(Montage, 100)
	if err != nil {
		t.Fatal(err)
	}
	maxIn := 0
	for _, n := range g.Operators() {
		if len(n.Inputs) > maxIn {
			maxIn = len(n.Inputs)
		}
	}
	if maxIn < 20 {
		t.Errorf("Montage max in-degree = %d, want >= 20 at size 100", maxIn)
	}

	// Epigenomics pipelines are chains: the dominant in-degree is 1 except
	// the merge.
	ge, err := Generate(Epigenomics, 100)
	if err != nil {
		t.Fatal(err)
	}
	chainOps := 0
	for _, n := range ge.Operators() {
		if len(n.Inputs) == 1 {
			chainOps++
		}
	}
	if chainOps < OperatorCount(ge)*8/10 {
		t.Errorf("Epigenomics: only %d/%d single-input ops", chainOps, OperatorCount(ge))
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Montage, 2); err == nil {
		t.Fatal("tiny size accepted")
	}
	if _, err := Generate(Category("Nope"), 100); err == nil {
		t.Fatal("unknown category accepted")
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Generate(Sipht, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Sipht, 60)
	if err != nil {
		t.Fatal(err)
	}
	if a.DOT() != b.DOT() {
		t.Fatal("generation not deterministic")
	}
}

// Property: every generated graph is a valid workflow with a reachable
// target across random categories and sizes.
func TestQuickValidWorkflows(t *testing.T) {
	cats := Categories()
	f := func(seed int64) bool {
		cat := cats[int(uint64(seed)%uint64(len(cats)))]
		size := 20 + int(uint64(seed>>8)%500)
		g, err := Generate(cat, size)
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
