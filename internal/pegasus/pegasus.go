// Package pegasus generates synthetic scientific workflow DAGs following
// the five Pegasus workflow categories of Bharathi et al. 2008 — Montage,
// CyberShake, Epigenomics, Inspiral and Sipht — which D3.3 §4.2 uses to
// benchmark the IReS planner on graphs of 30 to 1000 nodes. The generators
// reproduce each category's structural signature (Montage's high in/out
// degrees, Epigenomics' parallel pipelines, Sipht's wide aggregation, ...),
// which is what drives planner cost.
package pegasus

import (
	"fmt"

	"github.com/asap-project/ires/internal/metadata"
	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/workflow"
)

// Category enumerates the five Pegasus workflow families.
type Category string

// The five workflow categories of the Pegasus generator.
const (
	Montage     Category = "Montage"
	CyberShake  Category = "CyberShake"
	Epigenomics Category = "Epigenomics"
	Inspiral    Category = "Inspiral"
	Sipht       Category = "Sipht"
)

// Categories lists all families in presentation order.
func Categories() []Category {
	return []Category{Montage, CyberShake, Epigenomics, Inspiral, Sipht}
}

// Generate builds a workflow of approximately size operator nodes in the
// given category. The returned graph validates and has every source dataset
// materialized with plausible sizes.
func Generate(cat Category, size int) (*workflow.Graph, error) {
	if size < 6 {
		return nil, fmt.Errorf("pegasus: size %d too small (min 6)", size)
	}
	b := newBuilder()
	switch cat {
	case Montage:
		b.montage(size)
	case CyberShake:
		b.cyberShake(size)
	case Epigenomics:
		b.epigenomics(size)
	case Inspiral:
		b.inspiral(size)
	case Sipht:
		b.sipht(size)
	default:
		return nil, fmt.Errorf("pegasus: unknown category %q", cat)
	}
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, fmt.Errorf("pegasus: generated %s graph invalid: %w", cat, err)
	}
	return b.g, nil
}

// Algorithms returns the distinct abstract algorithm names of a generated
// graph, in first-use order. Experiment harnesses register m materialized
// implementations for each.
func Algorithms(g *workflow.Graph) []string {
	seen := make(map[string]bool)
	var out []string
	for _, n := range g.Operators() {
		alg := n.Operator.Algorithm()
		if !seen[alg] {
			seen[alg] = true
			out = append(out, alg)
		}
	}
	return out
}

type builder struct {
	g    *workflow.Graph
	seq  int
	err  error
	ops  int
	last string
}

func newBuilder() *builder {
	return &builder{g: workflow.NewGraph()}
}

func (b *builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// source adds a materialized input dataset.
func (b *builder) source(name string) string {
	d := operator.NewDataset(name, metadata.MustParse(
		"Execution.path=/pegasus/"+name+
			"\nConstraints.Engine.FS=HDFS"+
			"\nOptimization.documents=100000"+
			"\nOptimization.size=100000000"))
	if _, err := b.g.AddDataset(name, d); err != nil {
		b.fail(err)
	}
	return name
}

// op adds one abstract operator consuming the named datasets and returns
// its (fresh) output dataset name.
func (b *builder) op(alg string, inputs ...string) string {
	b.seq++
	b.ops++
	opName := fmt.Sprintf("%s_%d", alg, b.seq)
	a := operator.NewAbstract(opName, metadata.MustParse(
		"Constraints.OpSpecification.Algorithm.name="+alg))
	if _, err := b.g.AddOperator(opName, a); err != nil {
		b.fail(err)
		return ""
	}
	out := "d_" + opName
	if _, err := b.g.AddDataset(out, nil); err != nil {
		b.fail(err)
		return ""
	}
	for _, in := range inputs {
		if err := b.g.Connect(in, opName); err != nil {
			b.fail(err)
		}
	}
	if err := b.g.Connect(opName, out); err != nil {
		b.fail(err)
	}
	b.last = out
	return out
}

func (b *builder) target(ds string) {
	if err := b.g.SetTarget(ds); err != nil {
		b.fail(err)
	}
}

// montage: w parallel mProject, w mDiffFit each reading two neighbouring
// projections (the high-connectivity signature), a global mConcatFit and
// mBgModel, w parallel mBackground reading the model plus a projection,
// then mImgtbl/mAdd/mShrink/mJPEG aggregation. ~3w+6 operators.
func (b *builder) montage(size int) {
	w := (size - 6) / 3
	if w < 2 {
		w = 2
	}
	src := b.source("raw_images")
	proj := make([]string, w)
	for i := range proj {
		proj[i] = b.op("mProject", src)
	}
	diff := make([]string, w)
	for i := range diff {
		diff[i] = b.op("mDiffFit", proj[i], proj[(i+1)%w])
	}
	concat := b.op("mConcatFit", diff...)
	model := b.op("mBgModel", concat)
	bg := make([]string, w)
	for i := range bg {
		bg[i] = b.op("mBackground", model, proj[i])
	}
	tbl := b.op("mImgtbl", bg...)
	add := b.op("mAdd", tbl)
	shrink := b.op("mShrink", add)
	b.target(b.op("mJPEG", shrink))
}

// cyberShake: w ExtractSGT, w SeismogramSynthesis (one per extraction plus
// a shared rupture input), w PeakValCalc, two Zip aggregators. ~3w+2.
func (b *builder) cyberShake(size int) {
	w := (size - 2) / 3
	if w < 2 {
		w = 2
	}
	sgt := b.source("sgt_variations")
	rupture := b.source("ruptures")
	synthOuts := make([]string, w)
	peakOuts := make([]string, w)
	for i := 0; i < w; i++ {
		ex := b.op("ExtractSGT", sgt)
		synthOuts[i] = b.op("SeismogramSynthesis", ex, rupture)
		peakOuts[i] = b.op("PeakValCalc", synthOuts[i])
	}
	b.op("ZipSeis", synthOuts...)
	b.target(b.op("ZipPSA", peakOuts...))
}

// epigenomics: p parallel 4-stage pipelines between a splitter and a merge,
// followed by a 3-stage tail. ~4p+4.
func (b *builder) epigenomics(size int) {
	p := (size - 4) / 4
	if p < 2 {
		p = 2
	}
	src := b.source("dna_reads")
	split := b.op("fastQSplit", src)
	mapped := make([]string, p)
	for i := 0; i < p; i++ {
		f := b.op("filterContams", split)
		s := b.op("sol2sanger", f)
		q := b.op("fastq2bfq", s)
		mapped[i] = b.op("map", q)
	}
	merge := b.op("mapMerge", mapped...)
	index := b.op("maqIndex", merge)
	b.target(b.op("pileup", index))
}

// inspiral: w TmpltBank, w Inspiral, grouped Thinca (w/5 groups), grouped
// TrigBank. ~2w + 2*ceil(w/5).
func (b *builder) inspiral(size int) {
	w := size * 5 / 12
	if w < 2 {
		w = 2
	}
	src := b.source("gw_frames")
	insp := make([]string, w)
	for i := 0; i < w; i++ {
		bank := b.op("TmpltBank", src)
		insp[i] = b.op("Inspiral", bank)
	}
	groups := (w + 4) / 5
	thincas := make([]string, groups)
	for gi := 0; gi < groups; gi++ {
		lo, hi := gi*5, (gi+1)*5
		if hi > w {
			hi = w
		}
		thincas[gi] = b.op("Thinca", insp[lo:hi]...)
	}
	trigs := make([]string, groups)
	for gi := range thincas {
		trigs[gi] = b.op("TrigBank", thincas[gi])
	}
	b.target(b.op("Thinca2", trigs...))
}

// sipht: a wide flat patser layer aggregated by a concat, a handful of
// parallel analyses over the genome, and a final annotate gathering
// everything. ~w+9.
func (b *builder) sipht(size int) {
	w := size - 9
	if w < 2 {
		w = 2
	}
	genome := b.source("genome")
	pats := make([]string, w)
	for i := 0; i < w; i++ {
		pats[i] = b.op("Patser", genome)
	}
	concat := b.op("PatserConcat", pats...)
	trans := b.op("Transterm", genome)
	find := b.op("Findterm", genome)
	motif := b.op("RNAMotif", genome)
	blast := b.op("Blast", genome)
	srna := b.op("SRNA", trans, find, motif, blast)
	ffn := b.op("FFNParse", srna)
	synteny := b.op("BlastSynteny", srna)
	para := b.op("BlastParalogues", srna)
	b.target(b.op("SRNAAnnotate", concat, ffn, synteny, para))
}

// OperatorCount reports the number of operator nodes in a graph.
func OperatorCount(g *workflow.Graph) int { return len(g.Operators()) }
