package ires

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/model"
)

// registerTextOps installs the Fig 12 operator pairs (scikit centralized,
// Spark/MLlib distributed) and profiles them.
func registerTextOps(t *testing.T, p *Platform) {
	t.Helper()
	ops := map[string]string{
		"tfidf_scikit": `
Constraints.Engine=scikit
Constraints.OpSpecification.Algorithm.name=TF_IDF
Constraints.Input0.Engine.FS=LFS
Constraints.Output0.Engine.FS=LFS
Constraints.Output0.type=csv
`,
		"tfidf_spark": `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=TF_IDF
Constraints.Input0.Engine.FS=HDFS
Constraints.Output0.Engine.FS=HDFS
Constraints.Output0.type=SequenceFile
`,
		"kmeans_scikit": `
Constraints.Engine=scikit
Constraints.OpSpecification.Algorithm.name=kmeans
Constraints.Input0.Engine.FS=LFS
Constraints.Output0.Engine.FS=LFS
Constraints.Output0.type=csv
`,
		"kmeans_spark": `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=kmeans
Constraints.Input0.Engine.FS=HDFS
Constraints.Output0.Engine.FS=HDFS
Constraints.Output0.type=SequenceFile
`,
	}
	for name, desc := range ops {
		if err := p.RegisterOperator(name, desc); err != nil {
			t.Fatal(err)
		}
	}
	// Fast factories keep the test quick.
	p.Profiler.Factories = []model.Factory{
		func() model.Model { return model.NewLinear() },
		func() model.Model { return model.NewKNN(2) },
	}
	space := ProfileSpace{
		Records:        []int64{1_000, 5_000, 20_000, 100_000, 500_000},
		BytesPerRecord: 5_000,
		Resources: []engine.Resources{
			{Nodes: 1, CoresPerN: 2, MemMBPerN: 3456},
			{Nodes: 8, CoresPerN: 2, MemMBPerN: 3456},
			{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456},
		},
	}
	for name := range ops {
		if _, err := p.ProfileOperator(name, space); err != nil {
			t.Fatalf("profiling %s: %v", name, err)
		}
	}
}

func textWorkflow(t *testing.T, p *Platform, docs int64) *Workflow {
	t.Helper()
	sizeStr := func(n int64) string {
		return strings.TrimSpace(strings.ReplaceAll(strings.Repeat(" ", 1), " ", "")) + itoa(n)
	}
	wf, err := p.NewWorkflow().
		DatasetWithMeta("crawlDocuments",
			"Constraints.Engine.FS=HDFS\nConstraints.type=SequenceFile\nExecution.path=hdfs:///crawl"+
				"\nOptimization.documents="+sizeStr(docs)+
				"\nOptimization.size="+sizeStr(docs*5_000)).
		Operator("tfidf", "Constraints.OpSpecification.Algorithm.name=TF_IDF").
		Operator("kmeans", "Constraints.OpSpecification.Algorithm.name=kmeans").
		Dataset("d1").
		Dataset("d2").
		Chain("crawlDocuments", "tfidf", "d1", "kmeans", "d2").
		Target("d2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return wf
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestEndToEndTextAnalytics(t *testing.T) {
	p, err := NewPlatform(Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	registerTextOps(t, p)

	// Small corpus: tf-idf must land on centralized scikit (its
	// centralized/distributed crossover sits far above 2k documents);
	// k-means may legitimately go hybrid onto Spark.
	small := textWorkflow(t, p, 2_000)
	plan, res, err := p.Run(small)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := plan.StepFor("tfidf"); !ok || s.Engine != EngineScikit {
		t.Errorf("small corpus: tfidf on %v, want scikit\n%s", s, plan.Describe())
	}
	if res.Makespan <= 0 || res.FinalRecords <= 0 {
		t.Fatalf("bad result: %+v", res)
	}

	// Large corpus: Spark wins both steps.
	large := textWorkflow(t, p, 400_000)
	plan2, _, err := p.Run(large)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan2.OperatorSteps() {
		if s.Engine != EngineSpark {
			t.Errorf("large corpus: step %s on %s, want Spark\n%s", s.Name, s.Engine, plan2.Describe())
		}
	}
}

func TestEndToEndFaultTolerance(t *testing.T) {
	p, err := NewPlatform(Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	registerTextOps(t, p)
	wf := textWorkflow(t, p, 1_000)

	plan, err := p.Plan(wf)
	if err != nil {
		t.Fatal(err)
	}
	usesScikit := false
	for _, s := range plan.OperatorSteps() {
		if s.Engine == EngineScikit {
			usesScikit = true
		}
	}
	if !usesScikit {
		t.Fatalf("precondition: plan should use scikit for 1k docs:\n%s", plan.Describe())
	}
	// Kill scikit before execution: the plan must be repaired onto Spark.
	p.SetEngineAvailable(EngineScikit, false)
	for _, e := range p.AvailableEngines() {
		if e == EngineScikit {
			t.Fatal("dead engine still reported available")
		}
	}
	res, err := p.Execute(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans != 1 {
		t.Fatalf("replans = %d, want 1", res.Replans)
	}
	for _, log := range res.StepLog {
		if !log.Failed && log.Engine == EngineScikit {
			t.Fatal("step ran on dead engine")
		}
	}
}

func TestElasticProvisioningScalesResources(t *testing.T) {
	p, err := NewPlatform(Options{Seed: 5, ElasticProvisioning: true})
	if err != nil {
		t.Fatal(err)
	}
	registerTextOps(t, p)

	planAt := func(docs int64) *Plan {
		plan, err := p.Plan(textWorkflow(t, p, docs))
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	big := planAt(400_000)
	for _, s := range big.OperatorSteps() {
		if s.Res.Nodes < 1 || s.Res.Nodes > 16 {
			t.Fatalf("provisioned nodes out of range: %+v", s.Res)
		}
	}
	// The Pareto front for a profiled operator is reachable via the API.
	front, err := p.ProvisionFront("tfidf_spark", 400_000, 400_000*5_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 1 {
		t.Fatal("empty provisioning front")
	}
}

func TestWorkflowBuilderErrors(t *testing.T) {
	p, err := NewPlatform(Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NewWorkflow().Dataset("a").Dataset("a").Build(); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := p.NewWorkflow().Operator("o", "bad description").Build(); err == nil {
		t.Fatal("bad metadata accepted")
	}
	if _, err := p.NewWorkflow().Dataset("a").Target("missing").Build(); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, err := p.NewWorkflow().Build(); err == nil {
		t.Fatal("empty workflow accepted")
	}
}

func TestLoadLibraryDir(t *testing.T) {
	dir := t.TempDir()
	mkdir := func(parts ...string) string {
		path := filepath.Join(append([]string{dir}, parts...)...)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		return path
	}
	write := func(path, content string) {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(mkdir("datasets", "asapServerLog"),
		"Optimization.documents=1000\nOptimization.size=100000\nExecution.path=hdfs:///user/root/asap-server.log\nConstraints.Engine.FS=HDFS")
	write(mkdir("operators", "LineCount", "description"), `
Constraints.Engine=Spark
Constraints.Output.number=1
Constraints.Input.number=1
Constraints.OpSpecification.Algorithm.name=LineCount
`)
	write(mkdir("abstractOperators", "LineCount"), `
Constraints.Output.number=1
Constraints.Input.number=1
Constraints.OpSpecification.Algorithm.name=LineCount
`)
	write(mkdir("abstractWorkflows", "LineCountWorkflow", "graph"), `
asapServerLog,LineCount,0
LineCount,d1,0
d1,$$target
`)

	p, err := NewPlatform(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wfs, err := p.LoadLibraryDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wf, ok := wfs["LineCountWorkflow"]
	if !ok {
		t.Fatalf("workflows = %v", wfs)
	}
	// Profile the operator, then plan and execute the loaded workflow.
	if _, err := p.ProfileOperator("LineCount", ProfileSpace{
		Records:        []int64{100, 1_000, 10_000},
		BytesPerRecord: 100,
		Resources:      []engine.Resources{{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456}},
	}); err != nil {
		t.Fatal(err)
	}
	plan, res, err := p.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.OperatorSteps()) != 1 || res.Makespan <= 0 {
		t.Fatalf("LineCount run wrong: %s", plan.Describe())
	}
}

func TestLoadLibraryDirErrors(t *testing.T) {
	p, err := NewPlatform(Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Empty dir: no workflows, no error.
	wfs, err := p.LoadLibraryDir(t.TempDir())
	if err != nil || len(wfs) != 0 {
		t.Fatalf("empty dir: %v %v", wfs, err)
	}
	// Operator dir without description file.
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "operators", "broken"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadLibraryDir(dir); err == nil {
		t.Fatal("missing description accepted")
	}
}
