package ires

import (
	"path/filepath"
	"testing"
)

func TestSaveLoadModels(t *testing.T) {
	p, err := NewPlatform(Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	registerTextOps(t, p)
	path := filepath.Join(t.TempDir(), "models.json")
	if err := p.SaveModels(path); err != nil {
		t.Fatal(err)
	}

	// A fresh platform with the same operator library but no profiling:
	// planning fails until the models are loaded.
	q, err := NewPlatform(Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, mo := range p.Library.Operators() {
		if err := q.RegisterOperator(mo.Name, mo.Meta.String()); err != nil {
			t.Fatal(err)
		}
	}
	wf := textWorkflow(t, q, 2_000)
	if _, err := q.Plan(wf); err == nil {
		t.Fatal("planning without models should fail")
	}
	q.Profiler.Factories = p.Profiler.Factories
	if err := q.LoadModels(path); err != nil {
		t.Fatal(err)
	}
	plan, res, err := q.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.OperatorSteps()) != 2 || res.Makespan <= 0 {
		t.Fatalf("restored platform run wrong: %s", plan.Describe())
	}
	if err := q.LoadModels(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParetoPlansPlatform(t *testing.T) {
	p, err := NewPlatform(Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	registerTextOps(t, p)
	wf := textWorkflow(t, p, 20_000)
	plans, err := p.ParetoPlans(wf)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("empty Pareto front")
	}
	// Every front plan is executable on the platform.
	if _, err := p.Execute(wf, plans[0]); err != nil {
		t.Fatal(err)
	}
}
