// Package ires is an open-source reproduction of IReS, the Intelligent
// Multi-Engine Resource Scheduler of Doka et al. (SIGMOD 2015 / ASAP D3.3):
// a meta-scheduler that plans and executes complex analytics workflows over
// multiple engines and datastores, choosing per-operator the most
// advantageous implementation, inserting data movements between engines,
// provisioning resources elastically and recovering from failures by
// partially replanning around materialized intermediates.
//
// The engines themselves (Spark, Hadoop, Hama, Java, scikit, PostgreSQL,
// MemSQL, ...) are high-fidelity simulations on a discrete-event virtual
// clock — see DESIGN.md for the substitution rationale — while all IReS
// logic (metadata matching, DP planning, profiling/modelling, NSGA-II
// provisioning, fault-tolerant execution) is real.
//
// Basic use:
//
//	p, _ := ires.NewPlatform(ires.Options{Seed: 1})
//	p.RegisterDataset("docs", "Execution.path=hdfs:///docs\n...")
//	p.RegisterOperator("tfidf_spark", "Constraints.Engine=Spark\n...")
//	p.ProfileOperator("tfidf_spark", space)
//	wf, _ := p.NewWorkflow().
//		Dataset("docs").
//		Operator("tfidf", "Constraints.OpSpecification.Algorithm.name=TF_IDF").
//		...
//	plan, _ := p.Plan(wf)
//	result, _ := p.Execute(wf, plan)
package ires

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"github.com/asap-project/ires/internal/cluster"
	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/executor"
	"github.com/asap-project/ires/internal/faults"
	"github.com/asap-project/ires/internal/metrics"
	"github.com/asap-project/ires/internal/operator"
	"github.com/asap-project/ires/internal/planner"
	"github.com/asap-project/ires/internal/profiler"
	"github.com/asap-project/ires/internal/provision"
	"github.com/asap-project/ires/internal/scheduler"
	"github.com/asap-project/ires/internal/trace"
	"github.com/asap-project/ires/internal/vtime"
	"github.com/asap-project/ires/internal/workflow"
)

// Re-exported core types: the platform's full object model is usable
// through the public package alone.
type (
	// Workflow is an abstract analytics workflow DAG.
	Workflow = workflow.Graph
	// Plan is a materialized multi-engine execution plan.
	Plan = planner.Plan
	// PlanStep is one operator or move step of a plan.
	PlanStep = planner.Step
	// ExecutionResult summarises a workflow execution.
	ExecutionResult = executor.Result
	// Resources describes provisioned container resources.
	Resources = engine.Resources
	// ProfileSpace declares an operator's offline profiling grid.
	ProfileSpace = profiler.Space
	// RunMetrics is the monitoring record of one operator run.
	RunMetrics = metrics.Run
	// Environment is the (simulated) multi-engine cloud.
	Environment = engine.Environment
	// OperatorLibrary stores materialized operator descriptions.
	OperatorLibrary = operator.Library
	// ProvisionOption is one Pareto-optimal resource choice.
	ProvisionOption = provision.Option
	// RetryPolicy bounds per-step same-engine retries (see executor).
	RetryPolicy = executor.RetryPolicy
	// CheckpointPolicy enables sub-operator checkpointing: bounded-latency
	// preemption and mid-operator crash recovery (see executor).
	CheckpointPolicy = executor.CheckpointPolicy
	// PartialOperator reports checkpointed sub-operator progress surviving
	// a suspension (see ExecutionResult.Partials).
	PartialOperator = planner.PartialOperator
	// FaultConfig declares a deterministic fault-injection schedule.
	FaultConfig = faults.Config
	// FaultTransient parameterises per-engine transient failures.
	FaultTransient = faults.Transient
	// EngineOutage is a permanent engine-service failure at a virtual time.
	EngineOutage = faults.Outage
	// NodeCrash kills a cluster node at a virtual time.
	NodeCrash = faults.NodeCrash
	// StragglerFaults parameterises slowdown injection.
	StragglerFaults = faults.Straggler
	// OOMKillFaults parameterises the memory-oversubscription OOM killer
	// (effective only with Options.MemOvercommit above 1).
	OOMKillFaults = faults.OOMKill
	// FaultStats counts what an armed fault schedule actually injected.
	FaultStats = faults.Stats
	// TraceEvent is one virtual-time-stamped structured event.
	TraceEvent = trace.Event
	// TraceEventType names the event vocabulary (see internal/trace).
	TraceEventType = trace.EventType
	// Tracer receives structured events from every platform layer.
	Tracer = trace.Tracer
	// MetricsRegistry is the platform's counter/gauge registry.
	MetricsRegistry = trace.Registry
	// Run is the handle of one submitted workflow (see Submit).
	Run = scheduler.Run
	// RunSnapshot is a point-in-time view of a submitted run.
	RunSnapshot = scheduler.Snapshot
	// AdmissionPolicy decides when queued runs start, how many nodes they
	// lease, and whether active runs are resized or preempted (see FIFO,
	// FairShare, Deadline and CostQuota).
	AdmissionPolicy = scheduler.Policy
	// SubmitOptions carries the scheduling metadata of one submission
	// (label, tenant, deadline).
	SubmitOptions = scheduler.SubmitOptions
)

// FIFO returns the admission policy that runs one workflow at a time with
// the whole cluster leased to it (strict submission order).
func FIFO() AdmissionPolicy { return scheduler.FIFO{} }

// FairShare returns the admission policy that runs up to maxConcurrent
// workflows at once, each leasing an equal slice of the cluster's nodes.
func FairShare(maxConcurrent int) AdmissionPolicy {
	return scheduler.FairShare{MaxConcurrent: maxConcurrent}
}

// HierarchicalFairShare returns the CFS-style fair policy over a tenant →
// user → run hierarchy: every running run charges virtual runtime to its
// tenant and user at rate nodes/(weight·2^priority), and admission always
// goes to the least-charged tenant's least-charged user's best run — so
// cluster time converges to equal shares per tenant, equal shares per user
// within a tenant, and SubmitOptions.Priority acts as a runtime multiplier.
// Like FairShare it admits up to maxConcurrent runs on equal node slices.
func HierarchicalFairShare(maxConcurrent int) AdmissionPolicy {
	return scheduler.HierarchicalFairShare{MaxConcurrent: maxConcurrent}
}

// Deadline returns the earliest-deadline-first policy: waiting runs are
// ordered by their absolute deadlines (submit with SubmitWith and a
// Deadline), and a waiting run with a tighter deadline may preempt an active
// one — cooperatively, at the victim's next completed-operator boundary —
// when the planner's time estimates say the victim can still meet its own
// deadline after the suspension. The suspended run resumes later via
// replan-from-done-set, so none of its completed operators re-execute.
func Deadline() AdmissionPolicy { return scheduler.Deadline{} }

// CostQuota returns the per-tenant budget policy: each tenant's concurrently
// committed modeled cost (sum of planner cost estimates over its active and
// suspended runs) must stay within its budget; runs that would exceed it
// queue until earlier runs finish, and runs whose estimate can never fit the
// budget are rejected outright. Unlisted tenants get defaultBudget (0 or
// negative = unlimited).
func CostQuota(budgets map[string]float64, defaultBudget float64) AdmissionPolicy {
	return scheduler.CostQuota{Budgets: budgets, DefaultBudget: defaultBudget}
}

// DRF returns the Dominant Resource Fairness policy: each tenant's dominant
// share is the larger of its cores share and its memory share across active
// leases, divided by the tenant's weight (unlisted tenants weigh 1), and
// admission always goes to a waiting run of the minimum-dominant-share
// tenant — so cores-heavy and memory-heavy tenants each saturate their own
// bottleneck dimension instead of splitting node counts. Submit runs with
// SubmitOptions.DemandCores/DemandMemMB to lease per-node slices; whole-node
// submissions participate with full-node footprints. When all maxConcurrent
// slots are busy, a sufficiently starved tenant preempts the most-over-share
// tenant's latest run, gated on the victim still making its deadline.
func DRF(weights map[string]float64, maxConcurrent int) AdmissionPolicy {
	return scheduler.DRF{Weights: weights, MaxConcurrent: maxConcurrent}
}

// Typed execution failures (see the executor package).
var (
	// ErrTooManyReplans is returned when the failure/replan loop exceeds
	// Options.MaxReplans.
	ErrTooManyReplans = executor.ErrTooManyReplans
	// ErrDeadlock is returned when no step can make progress.
	ErrDeadlock = executor.ErrDeadlock
	// ErrContainersLost marks work invalidated by a node failure.
	ErrContainersLost = executor.ErrContainersLost
	// ErrFaultInjected marks a transient failure produced by the
	// chaos-injection layer.
	ErrFaultInjected = faults.ErrInjected
	// ErrRunCanceled marks a run stopped through its handle's Cancel.
	ErrRunCanceled = scheduler.ErrCanceled
	// ErrRunRejected marks a run refused outright by the admission policy
	// (e.g. its cost estimate can never fit the tenant's budget).
	ErrRunRejected = scheduler.ErrRejected
)

// Engine names of the default deployment.
const (
	EngineJava       = engine.EngineJava
	EngineSpark      = engine.EngineSpark
	EngineHama       = engine.EngineHama
	EngineMapReduce  = engine.EngineMapReduce
	EngineScikit     = engine.EngineScikit
	EnginePostgreSQL = engine.EnginePostgreSQL
	EngineMemSQL     = engine.EngineMemSQL
	EnginePython     = engine.EnginePython
	EngineCilk       = engine.EngineCilk
)

// Policy is the user-defined optimization objective.
type Policy int

// Optimization policies.
const (
	// MinTime minimises estimated workflow execution time.
	MinTime Policy = iota
	// MinCost minimises estimated monetary/resource cost.
	MinCost
	// Balanced trades the two off (0.5/0.5 normalised blend; resource
	// provisioning picks the knee of the Pareto front).
	Balanced
)

// Options configures a Platform.
type Options struct {
	// Seed drives every stochastic component (noise, model selection, GA).
	Seed int64
	// ClusterNodes / CoresPerNode / MemMBPerNode size the simulated
	// cluster; zero values use the paper's 16 x (2 cores, 3456MB).
	ClusterNodes int
	CoresPerNode int
	MemMBPerNode int
	// Policy is the optimization objective (default MinTime).
	Policy Policy
	// ElasticProvisioning enables NSGA-II resource provisioning per
	// operator; when off, operators get the full cluster (centralized
	// engines a single node).
	ElasticProvisioning bool
	// MonitorPeriod is the health/service polling period (default 10s of
	// virtual time).
	MonitorPeriod time.Duration
	// LaunchOverheadSec is the per-step YARN container launch overhead;
	// zero uses the default 1.5s, negative disables it.
	LaunchOverheadSec float64
	// Retry bounds per-step same-engine retries with exponential backoff
	// before a failure falls through to replanning. The zero value keeps
	// the historical semantics: one attempt, then replan.
	Retry RetryPolicy
	// TimeoutFactor enables straggler speculation: a step running longer
	// than TimeoutFactor × its predicted duration gets a backup copy on
	// the next-best engine, and the first finisher wins. Zero disables.
	TimeoutFactor float64
	// Checkpoint enables sub-operator checkpointing: iterative operators
	// checkpoint at iteration boundaries (single-pass ones at partition
	// boundaries), preemption suspends at the next checkpoint instead of
	// the operator boundary, and retries/speculation/resume seed the
	// banked progress instead of restarting the operator. The zero value
	// disables the layer entirely.
	Checkpoint CheckpointPolicy
	// BreakerThreshold trips the engine circuit breaker after that many
	// consecutive failures, excluding the engine from replans and
	// speculation for BreakerCooldown (default 120s of virtual time).
	// Zero disables the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxReplans bounds the failure/replan loop (zero: executor default).
	MaxReplans int
	// Tracer, when non-nil, receives every structured event the platform
	// emits, in addition to the built-in recorder that feeds Metrics() and
	// TraceEvents().
	Tracer Tracer
	// Admission picks the multi-workflow admission policy for Submit/Run
	// (default FIFO: one workflow at a time, whole cluster leased).
	Admission AdmissionPolicy
	// MemOvercommit lets allocations oversubscribe each node's memory up to
	// MemMB x ratio (cores are never overcommitted). Zero or 1 disables
	// overcommit; values in (0,1) are rejected. Pair with FaultConfig.OOM to
	// turn oversubscription into injected OOM kills.
	MemOvercommit float64
}

// Platform is the IReS runtime: interface, optimizer and executor layers
// wired over the simulated multi-engine cloud.
type Platform struct {
	opts Options

	Env      *engine.Environment
	Clock    *vtime.Clock
	Cluster  *cluster.Cluster
	Monitor  *cluster.Monitor
	Library  *operator.Library
	Profiler *profiler.Profiler

	planner     *planner.Planner
	provisioner *provision.Provisioner
	executor    *executor.Executor
	breaker     *executor.CircuitBreaker
	sched       *scheduler.Scheduler

	// mu guards the mutable hooks shared between the API surface and the
	// per-run executors built while workflows are in flight.
	mu            sync.Mutex
	faults        *faults.Schedule
	trivialReplan bool
	runObserver   func(op string, run *RunMetrics)

	abstracts map[string]*operator.Abstract

	recorder *trace.Recorder
	tracer   trace.Tracer
}

// NewPlatform builds a platform with the default engine deployment.
func NewPlatform(opts Options) (*Platform, error) {
	if opts.ClusterNodes == 0 {
		opts.ClusterNodes = engine.StandardCluster.Nodes
	}
	if opts.CoresPerNode == 0 {
		opts.CoresPerNode = engine.StandardCluster.CoresPerN
	}
	if opts.MemMBPerNode == 0 {
		opts.MemMBPerNode = engine.StandardCluster.MemMBPerN
	}
	if opts.MonitorPeriod == 0 {
		opts.MonitorPeriod = 10 * time.Second
	}

	p := &Platform{
		opts:      opts,
		Env:       engine.NewDefaultEnvironment(opts.Seed),
		Clock:     vtime.NewClock(),
		Library:   operator.NewLibrary(),
		abstracts: make(map[string]*operator.Abstract),
	}
	p.recorder = trace.NewRecorder(0)
	p.tracer = trace.Multi(p.recorder, opts.Tracer)
	p.Cluster = cluster.New(p.Clock, opts.ClusterNodes, opts.CoresPerNode, opts.MemMBPerNode)
	p.Cluster.SetTracer(p.tracer)
	if opts.MemOvercommit != 0 {
		if err := p.Cluster.SetMemOvercommit(opts.MemOvercommit); err != nil {
			return nil, err
		}
	}
	p.Monitor = cluster.NewMonitor(p.Cluster, p.Env, opts.MonitorPeriod)
	p.Profiler = profiler.New(p.Env, opts.Seed)
	p.provisioner = provision.New(p.Profiler, p.clusterBounds(), opts.Seed)
	p.breaker = executor.NewCircuitBreaker(p.Clock, opts.BreakerThreshold, opts.BreakerCooldown)
	p.breaker.Tracer = p.tracer

	pl, err := planner.New(planner.Config{
		Library:         p.Library,
		Estimator:       libraryEstimator{prof: p.Profiler, lib: p.Library},
		MoveSeconds:     p.Env.TransferSec,
		Objective:       p.objective(),
		EngineAvailable: p.engineUsable,
		Resources:       p.chooseResources,
		Tracer:          p.tracer,
		Now:             p.Clock.Now,
		Epoch:           p.plannerEpoch,
		Metrics:         p.recorder.Registry(),
	})
	if err != nil {
		return nil, err
	}
	p.planner = pl
	// Typed invalidation wiring: breaker transitions and profiler retrains
	// evict only the planner-cache entries that depend on the flapped engine
	// or retrained operator (invalidate.go) instead of flushing wholesale.
	p.breaker.OnTransition = pl.EngineAvailability
	p.Profiler.SetRetrainListener(pl.ProfilerRetrain)
	launch := opts.LaunchOverheadSec
	switch {
	case launch == 0:
		launch = 1.5
	case launch < 0:
		launch = 0
	}
	p.executor = &executor.Executor{
		Env:               p.Env,
		Cluster:           p.Cluster,
		Clock:             p.Clock,
		Observer:          p.observe,
		Replanner:         replanAdapter{pl},
		MaxReplans:        opts.MaxReplans,
		LaunchOverheadSec: launch,
		Retry:             opts.Retry,
		TimeoutFactor:     opts.TimeoutFactor,
		Speculate:         p.speculate,
		Breaker:           p.breaker,
		Monitor:           p.Monitor,
		Tracer:            p.tracer,
		Checkpoint:        opts.Checkpoint,
	}
	sched, err := scheduler.New(scheduler.Config{
		Clock:       p.Clock,
		Cluster:     p.Cluster,
		Policy:      opts.Admission,
		Plan:        func(g *workflow.Graph) (*planner.Plan, error) { return p.planner.Plan(g) },
		NewExecutor: p.newRunExecutor,
		Estimate:    p.estimateRun,
		Tracer:      p.tracer,
	})
	if err != nil {
		return nil, err
	}
	p.sched = sched
	p.Monitor.Start()
	return p, nil
}

// estimateRun is the scheduler's estimate hook: a dry planning pass yields
// the workflow's modeled execution time and cost, feeding deadline/budget
// policies. Only invoked when the active policy asks for estimates.
func (p *Platform) estimateRun(g *workflow.Graph) (float64, float64, error) {
	plan, err := p.planner.Plan(g)
	if err != nil {
		return 0, 0, err
	}
	return plan.EstTimeSec, plan.EstCost, nil
}

// newRunExecutor builds the executor of one run segment: same wiring as the
// solo executor, but confined to the segment's node lease, cooperating on
// the shared clock through the segment's party, honouring the scheduler's
// cancellation and cooperative-suspension probes, and stamping the run id on
// every trace event.
func (p *Platform) newRunExecutor(ctx scheduler.ExecContext) scheduler.Exec {
	p.mu.Lock()
	var inj executor.Injector
	if p.faults != nil {
		inj = p.faults
	}
	var rp executor.Replanner = replanAdapter{p.planner}
	if p.trivialReplan {
		rp = trivialReplanAdapter{p.planner}
	}
	p.mu.Unlock()
	return &executor.Executor{
		Env:               p.Env,
		Cluster:           p.Cluster,
		Clock:             p.Clock,
		Observer:          p.observe,
		Replanner:         rp,
		MaxReplans:        p.executor.MaxReplans,
		LaunchOverheadSec: p.executor.LaunchOverheadSec,
		Retry:             p.opts.Retry,
		TimeoutFactor:     p.opts.TimeoutFactor,
		Speculate:         p.speculate,
		Faults:            inj,
		Breaker:           p.breaker,
		Monitor:           p.Monitor,
		Tracer:            trace.WithRun(p.tracer, ctx.RunID),
		Party:             ctx.Party,
		Lease:             ctx.Lease,
		Canceled:          ctx.Canceled,
		Suspend:           ctx.Suspend,
		Checkpoint:        p.opts.Checkpoint,
		CkptScope:         ctx.RunID,
	}
}

func (p *Platform) clusterBounds() engine.Resources {
	return engine.Resources{
		Nodes:     p.opts.ClusterNodes,
		CoresPerN: p.opts.CoresPerNode,
		MemMBPerN: p.opts.MemMBPerNode,
	}
}

func (p *Platform) objective() planner.Objective {
	switch p.opts.Policy {
	case MinCost:
		return planner.MinCost
	case Balanced:
		return planner.Weighted(0.5, 0.5)
	default:
		return planner.MinTime
	}
}

func (p *Platform) provisionPolicy() provision.Policy {
	switch p.opts.Policy {
	case MinCost:
		return provision.MinCost
	case Balanced:
		return provision.Balanced
	default:
		return provision.MinTime
	}
}

// engineUsable is the planner's availability hook: an engine is plannable
// when its service is ON and the circuit breaker has not blacklisted it.
func (p *Platform) engineUsable(name string) bool {
	return p.Env.Available(name) && p.breaker.Allows(name)
}

// plannerEpoch is the planner's untyped (wholesale-flush) invalidation
// hook. Only infrastructure-shaped environment changes — engine
// registrations and infrastructure swaps, which shift every estimate —
// remain here. Availability changes (environment flips, breaker
// trips/resets/half-opens) are handled by the planner's per-engine
// availability fingerprint and typed EngineAvailability events, and
// profiler refits by typed ProfilerRetrain events, all of which evict only
// the dependent cache entries.
func (p *Platform) plannerEpoch() uint64 {
	return p.Env.InfraGen()
}

// PlannerCacheStats exposes the planner's memoization counters (see
// planner.CacheStats).
func (p *Platform) PlannerCacheStats() planner.CacheStats {
	return p.planner.CacheStats()
}

// ResetPlannerCache drops every memoization layer the planner leans on —
// the DP memo, the profiler's prediction cache and the library's match
// index — forcing the next Plan/Replan/ParetoPlans to run fully cold.
// Benchmarks use it to measure cold-start planning; normal invalidation is
// automatic.
func (p *Platform) ResetPlannerCache() {
	p.planner.FlushCache()
	p.Profiler.ResetPredictionCaches()
	p.Library.ResetMatchIndex()
}

// speculate picks the next-best backup for a straggling step: any
// materialized operator implementing the same abstract algorithm — including
// the step's own operator, which models YARN-style speculative re-execution
// on fresh containers — on a live, non-blacklisted engine, ranked by
// estimated execution time at the step's input scale. It is the executor's
// backup hook for speculative execution.
func (p *Platform) speculate(s *planner.Step) (executor.SpeculativeChoice, bool) {
	var (
		best  executor.SpeculativeChoice
		bestT float64
		found bool
	)
	est := libraryEstimator{prof: p.Profiler, lib: p.Library}
	for _, mo := range p.Library.Operators() {
		if mo.Algorithm() == "" || mo.Algorithm() != s.Algorithm {
			continue
		}
		if !p.engineUsable(mo.Engine()) {
			continue
		}
		res := p.chooseResources(mo, s.InRecords, s.InBytes)
		feats := map[string]float64{
			"records":  float64(s.InRecords),
			"bytes":    float64(s.InBytes),
			"nodes":    float64(res.Nodes),
			"cores":    float64(res.CoresPerN),
			"memoryMB": float64(res.MemMBPerN),
		}
		for k, v := range mo.Params() {
			feats[k] = v
		}
		t, ok := est.Estimate(mo.Name, profiler.TargetExecTime, feats)
		if !ok {
			continue
		}
		// Library.Operators is name-sorted, so strict < keeps ties
		// deterministic (first name wins).
		if !found || t < bestT {
			found = true
			bestT = t
			best = executor.SpeculativeChoice{
				OpName:    mo.Name,
				Engine:    mo.Engine(),
				Algorithm: mo.Algorithm(),
				Res:       res,
				Params:    mo.Params(),
			}
		}
	}
	return best, found
}

// chooseResources is the planner's provisioning hook.
func (p *Platform) chooseResources(mo *operator.Materialized, records, bytes int64) planner.Resources {
	prof, centralized := p.Env.Engine(mo.Engine())
	full := planner.Resources{Nodes: p.opts.ClusterNodes, CoresPerN: p.opts.CoresPerNode, MemMBPerN: p.opts.MemMBPerNode}
	if centralized && prof.Centralized {
		full = planner.Resources{Nodes: 1, CoresPerN: p.opts.CoresPerNode, MemMBPerN: p.opts.MemMBPerNode}
	}
	if !p.opts.ElasticProvisioning {
		return full
	}
	if _, ok := p.Profiler.Models(mo.Name); !ok {
		return full
	}
	best, _, err := p.provisioner.Provision(mo.Name, records, bytes, mo.Params(), p.provisionPolicy())
	if err != nil {
		return full
	}
	return planner.Resources{Nodes: best.Res.Nodes, CoresPerN: best.Res.CoresPerN, MemMBPerN: best.Res.MemMBPerN}
}

func (p *Platform) observe(opName string, run *metrics.Run) {
	// Online model refinement: every actual run feeds the models.
	_ = p.Profiler.Observe(opName, run)
	p.mu.Lock()
	obs := p.runObserver
	p.mu.Unlock()
	if obs != nil {
		obs(opName, run)
	}
}

// SetRunObserver registers a callback invoked after every operator run, in
// addition to the built-in model refinement (useful for experiments that
// react to execution progress, e.g. failure injection at a precise point).
func (p *Platform) SetRunObserver(fn func(op string, run *RunMetrics)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.runObserver = fn
}

// UseTrivialReplanner switches fault recovery to full-workflow replanning
// that ignores materialized intermediates — the TrivialReplan baseline of
// the paper's fault-tolerance evaluation.
func (p *Platform) UseTrivialReplanner() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trivialReplan = true
	p.executor.Replanner = trivialReplanAdapter{p.planner}
}

// libraryEstimator layers the paper's user-provided cost functions over the
// trained models: when an operator is unprofiled, constants declared in its
// description (Optimization.execTime / Optimization.cost — the UserFunction
// models of the D3.3 §3.3 description files) serve as estimates.
type libraryEstimator struct {
	prof *profiler.Profiler
	lib  *operator.Library
}

func (e libraryEstimator) Estimate(opName, target string, feats map[string]float64) (float64, bool) {
	if v, ok := e.prof.Estimate(opName, target, feats); ok {
		return v, true
	}
	if _, profiled := e.prof.Models(opName); profiled {
		// Profiled but infeasible at this configuration: the declared
		// constants must not override the learned feasibility wall.
		return 0, false
	}
	mo, ok := e.lib.Operator(opName)
	if !ok {
		return 0, false
	}
	var path string
	switch target {
	case profiler.TargetExecTime:
		path = "Optimization.execTime"
	case profiler.TargetCost:
		path = "Optimization.cost"
	default:
		return 0, false
	}
	raw, ok := mo.Meta.Get(path)
	if !ok || raw == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

type replanAdapter struct{ pl *planner.Planner }

func (r replanAdapter) Replan(g *workflow.Graph, done []planner.MaterializedIntermediate) (*planner.Plan, error) {
	return r.pl.Replan(g, done)
}

type trivialReplanAdapter struct{ pl *planner.Planner }

func (r trivialReplanAdapter) Replan(g *workflow.Graph, _ []planner.MaterializedIntermediate) (*planner.Plan, error) {
	return r.pl.Plan(g)
}

// RegisterOperator adds a materialized operator description (the
// description-file format of the paper, e.g. "Constraints.Engine=Spark\n...")
// to the operator library.
func (p *Platform) RegisterOperator(name, description string) error {
	_, err := p.Library.AddOperatorDescription(name, description)
	return err
}

// RegisterDataset adds a named dataset description to the library.
func (p *Platform) RegisterDataset(name, description string) error {
	_, err := p.Library.AddDatasetDescription(name, description)
	return err
}

// RegisterAbstractOperator declares an abstract operator usable in
// workflow graph files.
func (p *Platform) RegisterAbstractOperator(name, description string) error {
	meta, err := parseMeta(description)
	if err != nil {
		return fmt.Errorf("ires: abstract operator %s: %w", name, err)
	}
	p.abstracts[name] = operator.NewAbstract(name, meta)
	return nil
}

// ProfileOperator runs the offline profiling phase for a registered
// materialized operator and trains its estimation models. It returns the
// number of successful profiling runs.
func (p *Platform) ProfileOperator(name string, space ProfileSpace) (int, error) {
	mo, ok := p.Library.Operator(name)
	if !ok {
		return 0, fmt.Errorf("ires: unknown operator %q", name)
	}
	return p.Profiler.ProfileOffline(name, mo.Engine(), mo.Algorithm(), space)
}

// Plan materializes the optimal execution plan for an abstract workflow
// under the platform policy.
func (p *Platform) Plan(g *Workflow) (*Plan, error) {
	return p.planner.Plan(g)
}

// ParetoPlans returns the Pareto front of (time, cost) materialized plans
// for the workflow — the multi-objective planning extension. The user picks
// one and passes it to Execute.
func (p *Platform) ParetoPlans(g *Workflow) ([]*Plan, error) {
	return p.planner.ParetoPlans(g)
}

// Replan computes a plan reusing already-materialized intermediates.
func (p *Platform) Replan(g *Workflow, done []planner.MaterializedIntermediate) (*Plan, error) {
	return p.planner.Replan(g, done)
}

// Execute enforces a plan over the simulated cluster, with monitoring,
// model refinement and fault-tolerant replanning.
func (p *Platform) Execute(g *Workflow, plan *Plan) (*ExecutionResult, error) {
	return p.executor.Execute(g, plan)
}

// Run plans and executes a workflow in one call: it submits the workflow to
// the multi-workflow scheduler and waits for the result. Under the default
// FIFO admission policy this is equivalent to the historical Plan+Execute.
func (p *Platform) Run(g *Workflow) (*Plan, *ExecutionResult, error) {
	return p.Submit(g).Wait()
}

// Submit enqueues a workflow for execution under the platform's admission
// policy and returns its run handle immediately. Nothing executes until the
// scheduler is started (Start), waited on (Run.Wait, Drain) — so a batch of
// submissions is deterministic regardless of goroutine scheduling.
func (p *Platform) Submit(g *Workflow) *Run {
	return p.sched.Submit(g)
}

// SubmitNamed is Submit with an explicit workflow label for run listings.
func (p *Platform) SubmitNamed(name string, g *Workflow) *Run {
	return p.sched.SubmitNamed(name, g)
}

// SubmitWith is Submit with full scheduling metadata: a label, the tenant
// whose budget the run is charged to (CostQuota), and an absolute
// virtual-time deadline (Deadline).
func (p *Platform) SubmitWith(g *Workflow, opts SubmitOptions) *Run {
	return p.sched.SubmitWith(g, opts)
}

// Start kicks the scheduler so admitted runs begin executing without
// blocking the caller (pair with Drain or Run.Wait).
func (p *Platform) Start() {
	p.sched.Start()
}

// Drain blocks until every submitted run reaches a terminal state.
func (p *Platform) Drain() {
	p.sched.Drain()
}

// Runs lists every submitted run in submission order.
func (p *Platform) Runs() []RunSnapshot {
	return p.sched.Runs()
}

// RunByID returns the live handle of a submitted run. Terminal runs are
// pruned from the scheduler's hot state — use RunSnapshotByID for those.
func (p *Platform) RunByID(id string) (*Run, bool) {
	return p.sched.Get(id)
}

// RunSnapshotByID returns the snapshot of any submitted run, live or
// terminal (terminal runs are served from the scheduler's frozen records).
func (p *Platform) RunSnapshotByID(id string) (RunSnapshot, bool) {
	return p.sched.SnapshotOf(id)
}

// CancelRun cancels the run with the given id; it reports whether the id is
// known. Canceling an already-terminal run is a no-op.
func (p *Platform) CancelRun(id string) bool {
	return p.sched.CancelByID(id)
}

// TraceForRun returns the trace events of one submitted run, demuxed from
// the shared log and renumbered so a run's trace is byte-stable regardless
// of what executed alongside it.
func (p *Platform) TraceForRun(id string) []TraceEvent {
	return p.recorder.ForRun(id)
}

// ProvisionFront exposes the NSGA-II Pareto front of resource choices for a
// profiled operator at a given input scale.
func (p *Platform) ProvisionFront(opName string, records, bytes int64, params map[string]float64) ([]ProvisionOption, error) {
	return p.provisioner.Front(opName, records, bytes, params)
}

// SaveModels persists the profiler's model library (training buffers and
// feasibility walls) to a JSON file, so profiling survives across sessions.
func (p *Platform) SaveModels(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Profiler.Export(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadModels restores a model library previously written by SaveModels,
// retraining every imported model.
func (p *Platform) LoadModels(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return p.Profiler.Import(f)
}

// SetEngineAvailable flips an engine service ON/OFF (failure injection and
// maintenance). Planning and replanning honour it immediately: the typed
// event scopes the planner-cache eviction to the flipped engine.
func (p *Platform) SetEngineAvailable(name string, on bool) {
	p.Env.SetAvailable(name, on)
	p.planner.EngineAvailability(name)
	p.Monitor.Poll()
}

// AvailableEngines lists the engines currently usable: service observed ON
// and not blacklisted by the circuit breaker.
func (p *Platform) AvailableEngines() []string {
	var out []string
	for _, name := range p.Monitor.AvailableEngines() {
		if p.breaker.Allows(name) {
			out = append(out, name)
		}
	}
	return out
}

// InjectFaults arms a deterministic fault schedule over the platform: timed
// engine outages and node crashes are scheduled on the virtual clock, and
// transient/straggler injection hooks into every subsequent operator
// attempt. Calling it again replaces the previous schedule (already-armed
// timed faults stay scheduled).
func (p *Platform) InjectFaults(cfg FaultConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	sched := faults.New(cfg)
	sched.SetTracer(p.tracer)
	if err := sched.Arm(p.Clock, p.Env, p.Cluster); err != nil {
		return err
	}
	p.mu.Lock()
	p.faults = sched
	p.executor.Faults = sched
	p.mu.Unlock()
	return nil
}

// FaultStats reports the injection counters of the armed fault schedule
// (zero value when InjectFaults was never called).
func (p *Platform) FaultStats() FaultStats {
	p.mu.Lock()
	sched := p.faults
	p.mu.Unlock()
	if sched == nil {
		return FaultStats{}
	}
	return sched.Stats()
}

// BlacklistedEngines lists the engines currently excluded by the circuit
// breaker (empty unless BreakerThreshold is set and an engine is flapping).
func (p *Platform) BlacklistedEngines() []string {
	return p.breaker.Tripped()
}

// Metrics exposes the platform's counter/gauge registry, fed by the
// built-in trace recorder (attempts, retries, speculation, breaker trips,
// replans, fault injections, container churn, virtual time).
func (p *Platform) Metrics() *MetricsRegistry {
	return p.recorder.Registry()
}

// TraceEvents returns a snapshot of the recorded structured events, oldest
// first (bounded by the recorder's ring capacity).
func (p *Platform) TraceEvents() []TraceEvent {
	return p.recorder.Events()
}

// TraceSeq returns the sequence number of the most recently recorded event;
// pass it to TraceSince to window a later snapshot.
func (p *Platform) TraceSeq() int64 {
	return p.recorder.Seq()
}

// TraceSince returns the recorded events with sequence numbers strictly
// greater than seq — the per-run timeline when seq was captured via TraceSeq
// just before the run.
func (p *Platform) TraceSince(seq int64) []TraceEvent {
	return p.recorder.Since(seq)
}

// FailNode schedules a node crash at absolute virtual time at: the node
// goes UNHEALTHY and the containers running on it are invalidated, which
// the executor detects at the next monitor poll.
func (p *Platform) FailNode(name string, at time.Duration) error {
	return p.Cluster.FailNode(name, at)
}

// RestoreNode brings a failed node back into the cluster.
func (p *Platform) RestoreNode(name string) error {
	return p.Cluster.RestoreNode(name)
}
