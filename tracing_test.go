package ires

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/trace"
)

// faultyRun executes the text workflow on a freshly built platform with a
// fixed seed and chaos enabled, returning the full JSONL event log.
func faultyRun(t *testing.T, seed int64) ([]byte, *Platform, *ExecutionResult) {
	t.Helper()
	p, err := NewPlatform(Options{
		Seed:             seed,
		Retry:            RetryPolicy{MaxAttempts: 3, BaseBackoff: 2 * time.Second},
		TimeoutFactor:    2.5,
		BreakerThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	registerTextOps(t, p)
	if err := p.InjectFaults(FaultConfig{
		Seed:      seed,
		Default:   FaultTransient{FailProb: 0.25},
		Straggler: StragglerFaults{Prob: 0.2, Factor: 3},
		NodeCrashes: []NodeCrash{
			{Node: "node3", At: 30 * time.Second},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Repair the node later so full-cluster steps stay schedulable.
	p.Clock.Schedule(60*time.Second, func(time.Duration) {
		_ = p.RestoreNode("node3")
	})
	wf := textWorkflow(t, p, 200_000)
	_, res, err := p.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := trace.WriteJSONL(&b, p.TraceEvents()); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), p, res
}

// Fixed seed => byte-identical event log. Every event is stamped with virtual
// time only, so the trace is a deterministic, assertable artifact.
func TestTraceDeterministicForFixedSeed(t *testing.T) {
	first, _, _ := faultyRun(t, 11)
	second, _, _ := faultyRun(t, 11)
	if len(first) == 0 {
		t.Fatal("no events recorded")
	}
	if !bytes.Equal(first, second) {
		a := strings.Split(string(first), "\n")
		b := strings.Split(string(second), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("event logs diverge at line %d:\n  %s\n  %s", i, a[i], b[i])
			}
		}
		t.Fatalf("event logs differ in length: %d vs %d lines", len(a), len(b))
	}

	other, _, _ := faultyRun(t, 12)
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical event logs — noise/faults not seeded")
	}
}

// The metrics registry must agree with the execution result's own counters.
func TestMetricsAgreeWithExecutionResult(t *testing.T) {
	_, p, res := faultyRun(t, 11)
	reg := p.Metrics()

	if got := reg.Sum("ires_retries_total"); got != float64(res.Retries) {
		t.Errorf("ires_retries_total = %v, result.Retries = %d", got, res.Retries)
	}
	if got := reg.Sum("ires_replans_total"); got != float64(res.Replans) {
		t.Errorf("ires_replans_total = %v, result.Replans = %d", got, res.Replans)
	}
	if got := reg.Sum("ires_speculative_launches_total"); got != float64(res.SpeculativeLaunches) {
		t.Errorf("ires_speculative_launches_total = %v, result.SpeculativeLaunches = %d", got, res.SpeculativeLaunches)
	}
	if got := reg.Sum("ires_containers_lost_total"); got != float64(res.ContainersLost) {
		t.Errorf("ires_containers_lost_total = %v, result.ContainersLost = %d", got, res.ContainersLost)
	}
	st := p.FaultStats()
	if got := reg.Value("ires_faults_injected_total", map[string]string{"kind": "transient"}); got != float64(st.Transient) {
		t.Errorf("transient injections = %v, FaultStats.Transient = %d", got, st.Transient)
	}
	if got := reg.Value("ires_faults_injected_total", map[string]string{"kind": "straggler"}); got != float64(st.Stragglers) {
		t.Errorf("straggler injections = %v, FaultStats.Stragglers = %d", got, st.Stragglers)
	}
	if got := reg.Sum("ires_node_crashes_total"); got != 1 {
		t.Errorf("ires_node_crashes_total = %v, want 1", got)
	}
	if got := reg.Sum("ires_attempts_total"); got <= 0 {
		t.Error("no attempts counted")
	}
	// All allocations balanced by releases/losses once the run is over.
	if got := reg.Value("ires_containers_live", nil); got != 0 {
		t.Errorf("ires_containers_live = %v after run, want 0", got)
	}
	if got := reg.Value("ires_vtime_seconds", nil); got <= 0 {
		t.Errorf("ires_vtime_seconds = %v, want > 0", got)
	}

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"ires_attempts_total", "ires_vtime_seconds", "# TYPE"} {
		if !strings.Contains(b.String(), metric) {
			t.Errorf("Prometheus exposition missing %q", metric)
		}
	}
}

// TraceSeq/TraceSince window a single run's timeline out of the recorder.
func TestTraceSinceWindowsOneRun(t *testing.T) {
	p, err := NewPlatform(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	registerTextOps(t, p)
	wf := textWorkflow(t, p, 10_000)
	plan, err := p.Plan(wf)
	if err != nil {
		t.Fatal(err)
	}
	seq := p.TraceSeq()
	if _, err := p.Execute(wf, plan); err != nil {
		t.Fatal(err)
	}
	window := p.TraceSince(seq)
	if len(window) == 0 {
		t.Fatal("no events in execution window")
	}
	for _, ev := range window {
		if ev.Seq <= seq {
			t.Fatalf("event %d leaked into window starting after %d", ev.Seq, seq)
		}
		if ev.Type == trace.EvPlanStart && ev.Fields["replan"] == 0 && ev.Fields["pareto"] == 0 {
			t.Fatalf("initial planning event leaked into the execution window: %+v", ev)
		}
	}
	starts, finishes := 0, 0
	for _, ev := range window {
		switch ev.Type {
		case trace.EvAttemptStart:
			starts++
		case trace.EvAttemptFinish:
			finishes++
		}
	}
	if starts == 0 || starts != finishes {
		t.Fatalf("attempt starts/finishes = %d/%d, want equal and > 0", starts, finishes)
	}
}
