module github.com/asap-project/ires

go 1.22
