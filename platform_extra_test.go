package ires

import (
	"math"
	"testing"
)

func TestPolicyVariants(t *testing.T) {
	for _, pol := range []Policy{MinCost, Balanced} {
		p, err := NewPlatform(Options{Seed: 21, Policy: pol, ElasticProvisioning: true})
		if err != nil {
			t.Fatal(err)
		}
		registerTextOps(t, p)
		wf := textWorkflow(t, p, 20_000)
		plan, res, err := p.Run(wf)
		if err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		if len(plan.OperatorSteps()) != 2 || res.Makespan <= 0 {
			t.Fatalf("policy %v: bad run", pol)
		}
	}
}

func TestRegisterAbstractOperatorErrors(t *testing.T) {
	p, err := NewPlatform(Options{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterAbstractOperator("bad", "no equals sign"); err == nil {
		t.Fatal("bad description accepted")
	}
	if err := p.RegisterAbstractOperator("ok", "Constraints.OpSpecification.Algorithm.name=x"); err != nil {
		t.Fatal(err)
	}
	// Registered abstract operators resolve in graph files.
	if err := p.RegisterDataset("src", "Execution.path=/src"); err != nil {
		t.Fatal(err)
	}
	g, err := p.ParseWorkflow("src,ok,0\nok,d1,0\nd1,$$target")
	if err != nil {
		t.Fatal(err)
	}
	if g.Target != "d1" {
		t.Fatalf("target = %q", g.Target)
	}
	if _, err := p.ParseWorkflow("broken graph line without commas! x"); err == nil {
		t.Fatal("bad graph accepted")
	}
}

func TestProfileUnknownOperator(t *testing.T) {
	p, err := NewPlatform(Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ProfileOperator("ghost", ProfileSpace{}); err == nil {
		t.Fatal("unknown operator accepted")
	}
}

func TestNegativeLaunchOverheadDisables(t *testing.T) {
	p, err := NewPlatform(Options{Seed: 24, LaunchOverheadSec: -1})
	if err != nil {
		t.Fatal(err)
	}
	registerTextOps(t, p)
	wf := textWorkflow(t, p, 2_000)
	plan, res, err := p.Run(wf)
	if err != nil {
		t.Fatal(err)
	}
	// Without launch overhead, the makespan tracks the summed run times
	// closely (moves included).
	var sum float64
	for _, log := range res.StepLog {
		sum += (log.End - log.Start).Seconds()
	}
	if math.Abs(res.Makespan.Seconds()-sum) > 1e-6 {
		t.Fatalf("sequential chain makespan %.2f != step sum %.2f", res.Makespan.Seconds(), sum)
	}
	_ = plan
}

// TestAlgorithmWrappers exercises the public reference-algorithm surface.
func TestAlgorithmWrappers(t *testing.T) {
	graph := GenerateCallGraph(5_000, 3)
	rank := PageRank(graph, 10, 0.85)
	if len(rank) == 0 {
		t.Fatal("empty rank")
	}
	top := TopRanked(rank, 3)
	if len(top) != 3 {
		t.Fatal("TopRanked wrong")
	}
	corpus := GenerateCorpus(50, 30, 3)
	if CorpusSizeBytes(corpus) <= 0 {
		t.Fatal("corpus size")
	}
	vecs := TFIDF(corpus)
	dense := VectorizeTFIDF(vecs, 8)
	km, err := KMeans(dense, 3, 10, 3)
	if err != nil || len(km.Centroids) != 3 {
		t.Fatalf("KMeans: %v", err)
	}
	if len(WordCount(corpus)) == 0 {
		t.Fatal("WordCount empty")
	}
}

// TestUserFunctionCostModels verifies the paper's description-file cost
// constants (Optimization.execTime / Optimization.cost with UserFunction
// models, D3.3 §3.3) make unprofiled operators plannable.
func TestUserFunctionCostModels(t *testing.T) {
	p, err := NewPlatform(Options{Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	// Two alternatives with declared constants; no profiling at all.
	if err := p.RegisterOperator("lc_spark", `
Constraints.Engine=Spark
Constraints.OpSpecification.Algorithm.name=LineCount
Optimization.model.execTime=gr.ntua.ece.cslab.panic.core.models.UserFunction
Optimization.model.cost=gr.ntua.ece.cslab.panic.core.models.UserFunction
Optimization.execTime=9.0
Optimization.cost=9.0
`); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterOperator("lc_java", `
Constraints.Engine=Java
Constraints.OpSpecification.Algorithm.name=LineCount
Optimization.model.execTime=gr.ntua.ece.cslab.panic.core.models.UserFunction
Optimization.model.cost=gr.ntua.ece.cslab.panic.core.models.UserFunction
Optimization.execTime=2.0
Optimization.cost=2.0
`); err != nil {
		t.Fatal(err)
	}
	wf, err := p.NewWorkflow().
		DatasetWithMeta("log", "Execution.path=/log\nOptimization.documents=100\nOptimization.size=10000").
		Operator("count", "Constraints.OpSpecification.Algorithm.name=LineCount").
		Dataset("out").
		Chain("log", "count", "out").
		Target("out").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan(wf)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := plan.StepFor("count")
	if s.Op.Name != "lc_java" {
		t.Fatalf("declared costs ignored: chose %s\n%s", s.Op.Name, plan.Describe())
	}
	if plan.EstTimeSec != 2.0 {
		t.Fatalf("EstTimeSec = %v, want the declared 2.0", plan.EstTimeSec)
	}
}
