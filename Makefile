GO ?= go

.PHONY: all build test race vet fmt ci bench bench-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# ci is the gate a PR must pass: formatting, static analysis, and the full
# test suite under the race detector.
ci: fmt vet race

bench:
	$(GO) run ./cmd/ires-bench

# bench-smoke runs one small experiment end-to-end (planning, execution,
# fault recovery) as a fast sanity pass for the whole stack.
bench-smoke:
	$(GO) run ./cmd/ires-bench -quick -only FIG11,FIG20-22
