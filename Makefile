GO ?= go

.PHONY: all build test race vet fmt staticcheck shuffle cover ci bench bench-smoke bench-planner bench-sched bench-sched-scale bench-ckpt bench-drf bench-fed

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# staticcheck runs honnef.co/go/tools if the binary is on PATH (CI installs
# the pinned version; offline dev boxes without it skip with a notice).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs honnef.co/go/tools/cmd/staticcheck@2025.1.1)"; fi

# shuffle re-runs the suite twice in randomized order to flush out
# inter-test ordering dependencies and leaked global state.
shuffle:
	$(GO) test -shuffle=on -count=2 ./...

# cover enforces the statement-coverage floor on the scheduling core: the
# scheduler, cluster, agent and federation packages must stay at or above
# 85%.
cover:
	@for pkg in ./internal/scheduler/ ./internal/cluster/ ./internal/agent/ ./internal/federation/; do \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "$$pkg: no coverage reported"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" 'BEGIN{print (p >= 85) ? 1 : 0}'); \
		if [ "$$ok" != 1 ]; then echo "$$pkg: coverage $$pct% below the 85% floor"; exit 1; \
		else echo "$$pkg: coverage $$pct% (floor 85%)"; fi; \
	done

# ci is the gate a PR must pass: formatting, static analysis, the full test
# suite under the race detector plus a shuffled double pass, and the
# coverage floor on the scheduling core.
ci: fmt vet staticcheck race shuffle cover

bench:
	$(GO) run ./cmd/ires-bench

# bench-smoke runs a few small experiments end-to-end (planning, execution,
# fault recovery, scheduler contention) as a fast sanity pass for the stack,
# then the tracked planner benchmarks with their acceptance gate.
bench-smoke: bench-planner bench-sched bench-sched-scale bench-ckpt bench-drf bench-fed
	$(GO) run ./cmd/ires-bench -quick -only FIG11,FIG20-22,SCHED

# bench-sched runs the tracked scheduling benchmark and gate: the Deadline
# (EDF) policy must meet a deadline FIFO misses on the contention workload by
# preempting and resuming the long run, with fixed-seed byte-identical
# per-run traces under both policies. Writes BENCH_SCHED.json.
bench-sched:
	$(GO) run ./cmd/bench-sched -out BENCH_SCHED.json

# bench-sched-scale runs the tracked fleet-scale scheduler benchmark and
# gate: on a fully reserved cluster with 10k-100k queued runs, the indexed
# incremental scheduler state must sustain >=10x the decision-round
# throughput of the rebuild-everything baseline under every policy, with
# O(1) allocations per decision in queue depth. Writes BENCH_SCHED_SCALE.json.
bench-sched-scale:
	$(GO) run ./cmd/bench-sched-scale -out BENCH_SCHED_SCALE.json

# bench-ckpt runs the tracked sub-operator checkpointing benchmark and gate:
# Deadline-policy preemption latency must be bounded by one checkpoint
# interval (unbounded without checkpoints), and checkpointed mid-operator
# crash recovery must re-execute strictly fewer virtual-seconds than
# operator-granular recovery, with fixed-seed byte-identical traces in every
# scenario. Writes BENCH_CKPT.json.
bench-ckpt:
	$(GO) run ./cmd/bench-ckpt -out BENCH_CKPT.json

# bench-drf runs the tracked Dominant-Resource-Fairness benchmark and gate:
# DRF must equalize a cores-heavy and a memory-heavy tenant's dominant
# shares within 10% over the early window where FIFO starves one of them,
# and the 1.5x memory-overcommit scenario must complete through the
# OOM-kill -> retry/checkpoint-restore loop with zero re-executed operators
# and fixed-seed byte-identical traces. Writes BENCH_DRF.json.
bench-drf:
	$(GO) run ./cmd/bench-drf -out BENCH_DRF.json

# bench-planner runs the tracked planner benchmark suite (cold plan, warm
# replan, warm Pareto, plus the 10k-operator giant-DAG flap-replan cell)
# and rewrites the BENCH_PLANNER.json baseline; it fails if the warm
# replan falls below the 3x-speedup / 50%-fewer-allocs floor, if the
# giant-DAG partial-invalidation flap replan falls below 5x over the
# wholesale-flush baseline, or if warm plans diverge from cold ones.
bench-planner:
	$(GO) run ./cmd/bench-planner -out BENCH_PLANNER.json

# bench-fed runs the tracked multi-cluster federation benchmark and gate:
# two regions of 64 node agents run a checkpointing workload placed by data
# locality; a full region outage mid-flight must be recovered by
# cross-cluster replans that restore the mirrored durable checkpoints with
# zero re-executed work units, and two fixed-seed executions must produce
# byte-identical merged traces. Writes BENCH_FED.json.
bench-fed:
	$(GO) run ./cmd/bench-fed -out BENCH_FED.json
