package ires

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/engine"
	"github.com/asap-project/ires/internal/model"
	"github.com/asap-project/ires/internal/trace"
)

// registerStormOps registers iterative pagerank and kmeans on both Spark
// and Hama with identical iteration counts, so an engine outage mid-run can
// switch engines while the replacement attempt resumes the algorithm's
// banked checkpoints (keys are engine-agnostic).
func registerStormOps(t *testing.T, p *Platform) {
	t.Helper()
	p.Profiler.Factories = []model.Factory{
		func() model.Model { return model.NewLinear() },
		func() model.Model { return model.NewKNN(2) },
	}
	space := ProfileSpace{
		Records:        []int64{1_000, 10_000, 100_000},
		BytesPerRecord: 1_000,
		Params:         map[string][]float64{"iterations": {30}},
		Resources: []engine.Resources{
			{Nodes: 8, CoresPerN: 2, MemMBPerN: 3456},
			{Nodes: 16, CoresPerN: 2, MemMBPerN: 3456},
		},
	}
	for _, algo := range []string{engine.AlgPagerank, engine.AlgKMeans} {
		for _, eng := range []string{EngineSpark, EngineHama} {
			name := "storm_" + algo + "_" + eng
			desc := "Constraints.Engine=" + eng +
				"\nConstraints.OpSpecification.Algorithm.name=" + algo +
				"\nConstraints.Input0.Engine.FS=HDFS" +
				"\nConstraints.Output0.Engine.FS=HDFS" +
				"\nConstraints.Output0.type=SequenceFile" +
				"\nOptimization.param.iterations=30\n"
			if err := p.RegisterOperator(name, desc); err != nil {
				t.Fatal(err)
			}
			if _, err := p.ProfileOperator(name, space); err != nil {
				t.Fatalf("profiling %s: %v", name, err)
			}
		}
	}
}

// ckptStormBatch runs one checkpoint storm: three long iterative chains
// under the Deadline policy with durable checkpointing, battered by a
// pseudorandom (seed-derived) schedule of urgent deadlined submissions
// (preemptions), node crashes with delayed repairs, and an engine outage.
// Cluster invariants are checked after every injected event. Returns the
// per-run JSONL traces and parsed events in submission order plus the run
// snapshots.
func ckptStormBatch(t *testing.T, seed int64) ([][]byte, [][]trace.Event, []RunSnapshot) {
	t.Helper()
	p, err := NewPlatform(Options{
		Seed:       seed,
		Admission:  Deadline(),
		Retry:      RetryPolicy{MaxAttempts: 6, BaseBackoff: 2 * time.Second},
		Checkpoint: CheckpointPolicy{Enabled: true, MinIntervalSec: 4, Durable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerStormOps(t, p)

	// Invariant failures inside clock callbacks are collected and reported
	// after Drain (callbacks may run off the test goroutine).
	var (
		invMu   sync.Mutex
		invErrs []string
	)
	check := func(when string) {
		if err := p.Cluster.CheckInvariants(); err != nil {
			invMu.Lock()
			invErrs = append(invErrs, fmt.Sprintf("%s: %v", when, err))
			invMu.Unlock()
		}
	}

	rng := rand.New(rand.NewSource(seed))
	secs := func(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }

	var runs []*Run
	algos := [3][2]string{
		{engine.AlgPagerank, engine.AlgKMeans},
		{engine.AlgKMeans, engine.AlgPagerank},
		{engine.AlgPagerank, engine.AlgPagerank},
	}
	records := [3]int64{150_000, 120_000, 180_000}
	for i := 0; i < 3; i++ {
		wf := chainWorkflow(t, p, algos[i][0], algos[i][1], records[i])
		runs = append(runs, p.SubmitNamed(fmt.Sprintf("storm-long-%d", i), wf))
	}

	// Two urgent deadlined arrivals force preempt requests at arbitrary
	// positions relative to checkpoint boundaries.
	urgentCh := make(chan *Run, 2)
	for i := 0; i < 2; i++ {
		at := secs(20 + rng.Float64()*100)
		deadline := at + secs(150+rng.Float64()*150)
		name := fmt.Sprintf("storm-urgent-%d", i)
		p.Clock.Schedule(at, func(time.Duration) {
			urgentCh <- p.SubmitWith(singleAlgoWorkflow(t, p, engine.AlgKMeans, 15_000),
				SubmitOptions{Name: name, Deadline: deadline})
			check(name + " submitted")
		})
	}

	// Two node crashes with delayed repairs: live gangs die mid-operator,
	// and with durable checkpoints no banked progress dies with them.
	for _, node := range []string{"node2", "node9"} {
		node := node
		at := 15 + rng.Float64()*120
		if err := p.FailNode(node, secs(at)); err != nil {
			t.Fatal(err)
		}
		p.Clock.Schedule(secs(at)+time.Millisecond, func(time.Duration) {
			check(node + " crashed")
		})
		p.Clock.Schedule(secs(at+20+rng.Float64()*20), func(time.Duration) {
			_ = p.RestoreNode(node)
			check(node + " restored")
		})
	}

	// One engine outage window: attempts on Spark fail non-retryably, the
	// replans switch to Hama, and same-algorithm checkpoints carry over.
	outageAt := 25 + rng.Float64()*80
	p.Clock.Schedule(secs(outageAt), func(time.Duration) {
		p.SetEngineAvailable(EngineSpark, false)
		check("Spark outage")
	})
	p.Clock.Schedule(secs(outageAt+25), func(time.Duration) {
		p.SetEngineAvailable(EngineSpark, true)
		check("Spark repaired")
	})

	p.Drain()
	runs = append(runs, <-urgentCh, <-urgentCh)

	invMu.Lock()
	defer invMu.Unlock()
	for _, msg := range invErrs {
		t.Errorf("invariant violated after %s", msg)
	}

	var (
		logs   [][]byte
		events [][]trace.Event
		snaps  []RunSnapshot
	)
	for _, r := range runs {
		if _, _, err := r.Wait(); err != nil {
			t.Fatalf("%s: %v", r.ID(), err)
		}
		evs := p.TraceForRun(r.ID())
		var b bytes.Buffer
		if err := trace.WriteJSONL(&b, evs); err != nil {
			t.Fatal(err)
		}
		logs = append(logs, b.Bytes())
		events = append(events, evs)
		snaps = append(snaps, r.Status())
	}
	if got := p.Cluster.ReservedNodes(); got != 0 {
		t.Fatalf("%d nodes still reserved after drain", got)
	}
	if err := p.Cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return logs, events, snaps
}

// assertCheckpointConsistency walks one run's trace and enforces the
// checkpoint contract under durable mode: writes per workflow operator are
// strictly monotonic, every restore seeds exactly the maximum units banked
// so far (zero re-executed checkpointed iterations — the attempt restarts
// past everything durably completed), and nothing is ever reported lost.
func assertCheckpointConsistency(t *testing.T, runID string, events []trace.Event) (writes, restores int) {
	t.Helper()
	opNode := func(step string) string {
		if i := strings.IndexByte(step, '/'); i >= 0 {
			return step[:i]
		}
		return step
	}
	maxWrite := map[string]int{}
	for _, ev := range events {
		switch ev.Type {
		case trace.EvCheckpointWrite:
			writes++
			n := opNode(ev.Step)
			u := int(ev.Fields["units"])
			if u <= maxWrite[n] {
				t.Errorf("%s: non-monotonic checkpoint write for %s: %d after %d", runID, n, u, maxWrite[n])
			}
			maxWrite[n] = u
		case trace.EvCheckpointRestore:
			restores++
			n := opNode(ev.Step)
			u := int(ev.Fields["units"])
			if u != maxWrite[n] {
				t.Errorf("%s: restore of %s seeded %d units, banked max is %d — checkpointed iterations re-executed",
					runID, n, u, maxWrite[n])
			}
		case trace.EvCheckpointLost:
			t.Errorf("%s: durable checkpoint reported lost: %s", runID, ev.Step)
		}
	}
	return writes, restores
}

// TestCheckpointStorm interleaves preemptions, node crashes and an engine
// outage with checkpoint boundaries across several seeds, asserting cluster
// invariants after every event, the no-re-executed-checkpointed-iterations
// contract, and byte-identical fixed-seed traces.
func TestCheckpointStorm(t *testing.T) {
	for _, seed := range []int64{91, 97, 93} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			first, events, snaps := ckptStormBatch(t, seed)
			totalWrites, totalRestores, preempted := 0, 0, 0
			for i, s := range snaps {
				preempted += s.Preemptions
				w, r := assertCheckpointConsistency(t, s.ID, events[i])
				totalWrites += w
				totalRestores += r
			}
			if totalWrites == 0 {
				t.Fatal("storm banked no checkpoints — scenario no longer exercises the layer")
			}
			if totalRestores == 0 {
				t.Fatal("storm never restored a checkpoint — faults no longer hit running operators")
			}
			if preempted == 0 {
				t.Fatal("no run was preempted — urgent arrivals no longer force preemption")
			}

			second, _, _ := ckptStormBatch(t, seed)
			for i := range first {
				if !bytes.Equal(first[i], second[i]) {
					t.Fatalf("run %d (%s): traces differ between two same-seed executions", i, snaps[i].Workflow)
				}
			}
		})
	}
}

// TestCheckpointStormDeterministicAcrossGOMAXPROCS pins the storm timeline
// against scheduler parallelism: GOMAXPROCS=1 must reproduce the same
// per-run bytes.
func TestCheckpointStormDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const seed = 91
	first, _, snaps := ckptStormBatch(t, seed)
	prev := runtime.GOMAXPROCS(1)
	second, _, _ := ckptStormBatch(t, seed)
	runtime.GOMAXPROCS(prev)
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("run %d (%s): traces differ under GOMAXPROCS=1", i, snaps[i].Workflow)
		}
	}
}
