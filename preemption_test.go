package ires

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/asap-project/ires/internal/trace"
)

// chainWorkflow builds in -> <algoA> -> mid -> <algoB> -> out, a two-operator
// chain whose mid dataset is the materialized intermediate a preempted run
// resumes from.
func chainWorkflow(t *testing.T, p *Platform, algoA, algoB string, records int64) *Workflow {
	t.Helper()
	wf, err := p.NewWorkflow().
		DatasetWithMeta("in",
			"Constraints.Engine.FS=HDFS\nConstraints.type=SequenceFile\nExecution.path=hdfs:///in"+
				"\nOptimization.documents="+itoa(records)+
				"\nOptimization.size="+itoa(records*1_000)).
		Operator("opA", "Constraints.OpSpecification.Algorithm.name="+algoA).
		Operator("opB", "Constraints.OpSpecification.Algorithm.name="+algoB).
		Dataset("mid").
		Dataset("out").
		Chain("in", "opA", "mid", "opB", "out").
		Target("out").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return wf
}

// completedOpFinishes counts successful non-speculative attempt.finish events
// per plan step in a run's trace.
func completedOpFinishes(events []trace.Event) map[string]int {
	finishes := map[string]int{}
	for _, ev := range events {
		if ev.Type == trace.EvAttemptFinish && !ev.Speculative {
			finishes[ev.Step]++
		}
	}
	return finishes
}

// A run preempted by the Deadline policy must stop at an operator boundary,
// yield its lease to the urgent run, and resume by replanning from its done
// set — executing every completed operator exactly once across the whole
// preemption arc.
func TestPreemptionResumesWithoutReexecution(t *testing.T) {
	const seed = 51
	p, err := NewPlatform(Options{Seed: seed, Admission: Deadline()})
	if err != nil {
		t.Fatal(err)
	}
	registerConcOps(t, p)

	long := p.SubmitNamed("long", chainWorkflow(t, p, concAlgos[0], concAlgos[1], 200_000))
	urgentCh := make(chan *Run, 1)
	p.Clock.Schedule(10*time.Second, func(time.Duration) {
		urgentCh <- p.SubmitWith(singleAlgoWorkflow(t, p, concAlgos[2], 20_000),
			SubmitOptions{Name: "urgent", Deadline: 120 * time.Second})
	})
	p.Drain()
	urgent := <-urgentCh

	if _, _, err := long.Wait(); err != nil {
		t.Fatalf("long run: %v", err)
	}
	if _, _, err := urgent.Wait(); err != nil {
		t.Fatalf("urgent run: %v", err)
	}
	longSnap, urgentSnap := long.Status(), urgent.Status()
	if longSnap.Preemptions != 1 {
		t.Fatalf("long run preemptions = %d, want 1", longSnap.Preemptions)
	}
	if longSnap.SuspendedSec <= 0 {
		t.Fatalf("long run suspendedSec = %v, want > 0", longSnap.SuspendedSec)
	}
	// The urgent run must have executed inside the suspension window, not
	// after the long run finished.
	if urgentSnap.FinishedSec >= longSnap.FinishedSec {
		t.Fatalf("urgent finished at %.1fs, after the long run (%.1fs) — no preemption benefit",
			urgentSnap.FinishedSec, longSnap.FinishedSec)
	}

	// Zero re-executed operators: each completed step finished exactly once
	// over suspend + resume.
	finishes := completedOpFinishes(p.TraceForRun(long.ID()))
	if len(finishes) == 0 {
		t.Fatal("long run trace has no attempt.finish events")
	}
	for step, n := range finishes {
		if n != 1 {
			t.Errorf("step %q finished %d times across the preemption arc, want 1", step, n)
		}
	}

	// The preemption arc is visible in the trace: suspend -> lease revoke
	// while urgent runs -> resume with a fresh lease.
	var suspends, resumes int
	for _, ev := range p.TraceForRun(long.ID()) {
		switch ev.Type {
		case trace.EvRunSuspend:
			suspends++
		case trace.EvRunResume:
			resumes++
		}
	}
	if suspends != 1 || resumes != 1 {
		t.Fatalf("suspend/resume events = %d/%d, want 1/1", suspends, resumes)
	}

	if got := p.Cluster.ReservedNodes(); got != 0 {
		t.Fatalf("%d nodes still reserved after drain", got)
	}
	if err := p.Cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// deadlineChaosBatch runs the Deadline-policy chaos scenario on a fresh
// platform: three long chains submitted at t=0 plus an urgent deadline run
// submitted at t=15s, under transient faults and retries. Returns each run's
// demuxed JSONL trace in submission order plus the snapshots.
func deadlineChaosBatch(t *testing.T, seed int64) ([][]byte, []RunSnapshot) {
	t.Helper()
	p, err := NewPlatform(Options{
		Seed:      seed,
		Admission: Deadline(),
		Retry:     RetryPolicy{MaxAttempts: 3, BaseBackoff: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	registerConcOps(t, p)
	if err := p.InjectFaults(FaultConfig{
		Seed:    seed,
		Default: FaultTransient{FailProb: 0.15},
	}); err != nil {
		t.Fatal(err)
	}

	var runs []*Run
	for i := 0; i < 3; i++ {
		wf := chainWorkflow(t, p, concAlgos[i%len(concAlgos)], concAlgos[(i+1)%len(concAlgos)], concRecords[i])
		runs = append(runs, p.SubmitNamed(fmt.Sprintf("long-%d", i), wf))
	}
	urgentCh := make(chan *Run, 1)
	p.Clock.Schedule(15*time.Second, func(time.Duration) {
		urgentCh <- p.SubmitWith(singleAlgoWorkflow(t, p, concAlgos[3], 15_000),
			SubmitOptions{Name: "urgent", Deadline: 150 * time.Second})
	})
	p.Drain()
	runs = append(runs, <-urgentCh)

	var (
		logs  [][]byte
		snaps []RunSnapshot
	)
	for _, r := range runs {
		if _, _, err := r.Wait(); err != nil {
			t.Fatalf("%s: %v", r.ID(), err)
		}
		var b bytes.Buffer
		if err := trace.WriteJSONL(&b, p.TraceForRun(r.ID())); err != nil {
			t.Fatal(err)
		}
		logs = append(logs, b.Bytes())
		snaps = append(snaps, r.Status())
	}
	if got := p.Cluster.ReservedNodes(); got != 0 {
		t.Fatalf("%d nodes still reserved after drain", got)
	}
	return logs, snaps
}

// Concurrent workflows under the Deadline policy with fault injection: a
// fixed seed must yield byte-identical per-run traces across two executions
// AND across different GOMAXPROCS settings — preemption decisions, like
// everything else, are a pure function of the virtual-time schedule.
// Lowering GOMAXPROCS before building the platform also shrinks the
// planner's candidate-evaluation pool (planner.Config.Workers defaults from
// GOMAXPROCS), so this covers the Workers axis as well.
func TestDeadlineChaosDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const seed = 61
	first, snaps := deadlineChaosBatch(t, seed)
	second, _ := deadlineChaosBatch(t, seed)

	// The urgent run actually triggered a preemption on this seed (if this
	// fails after a scenario change, retune sizes so the scenario still
	// exercises the preemption arc).
	preempted := 0
	for _, s := range snaps {
		preempted += s.Preemptions
	}
	if preempted == 0 {
		t.Fatal("no run was preempted — scenario no longer exercises preemption")
	}

	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("run %d (%s): traces differ between two same-seed executions", i, snaps[i].Workflow)
		}
	}

	prev := runtime.GOMAXPROCS(1)
	third, _ := deadlineChaosBatch(t, seed)
	runtime.GOMAXPROCS(prev)
	for i := range first {
		if !bytes.Equal(first[i], third[i]) {
			t.Fatalf("run %d (%s): traces differ under GOMAXPROCS=1", i, snaps[i].Workflow)
		}
	}
}

// CostQuota (the remaining shipped policy) is held to the same bar: a
// fixed-seed multi-tenant batch yields byte-identical per-run traces across
// two executions.
func TestCostQuotaTracesDeterministic(t *testing.T) {
	batch := func() [][]byte {
		p, err := NewPlatform(Options{
			Seed: 71,
			// Budgets sized so each acme run fits alone but the two together
			// exceed the budget and must serialize; "other" is unconstrained.
			Admission: CostQuota(map[string]float64{"acme": 9_000}, 50_000),
		})
		if err != nil {
			t.Fatal(err)
		}
		registerConcOps(t, p)
		var runs []*Run
		for i := 0; i < 4; i++ {
			tenant := "acme"
			if i%2 == 1 {
				tenant = "other"
			}
			runs = append(runs, p.SubmitWith(
				singleAlgoWorkflow(t, p, concAlgos[i], concRecords[i]),
				SubmitOptions{Name: fmt.Sprintf("cq-%d", i), Tenant: tenant}))
		}
		p.Drain()
		var logs [][]byte
		for _, r := range runs {
			if _, _, err := r.Wait(); err != nil {
				t.Fatalf("%s: %v", r.ID(), err)
			}
			var b bytes.Buffer
			if err := trace.WriteJSONL(&b, p.TraceForRun(r.ID())); err != nil {
				t.Fatal(err)
			}
			logs = append(logs, b.Bytes())
		}
		return logs
	}
	first, second := batch(), batch()
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("run %d: CostQuota traces differ between two same-seed executions", i)
		}
	}
}
